#include "parallel.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>

namespace cap {

namespace {

/** 0-based pool-worker index of this thread; 0 off the pool. */
thread_local int t_worker_id = 0;

} // namespace

int
currentWorkerId()
{
    return t_worker_id;
}

ThreadPool::ThreadPool(int threads, size_t queue_capacity)
{
    int count = std::max(threads, 1);
    capacity_ = queue_capacity ? queue_capacity
                               : static_cast<size_t>(count) * 4;
    stats_.workers.resize(static_cast<size_t>(count));
    workers_.reserve(static_cast<size_t>(count));
    for (int i = 0; i < count; ++i) {
        workers_.emplace_back([this, i] {
            t_worker_id = i;
            workerLoop(i);
        });
    }
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    not_empty_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        if (tasks_.size() >= capacity_) {
            const auto blocked = std::chrono::steady_clock::now();
            not_full_.wait(lock,
                           [this] { return tasks_.size() < capacity_; });
            stats_.submit_block_seconds +=
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - blocked)
                    .count();
        }
        tasks_.push(std::move(task));
        ++stats_.submitted;
        stats_.max_queue_depth =
            std::max(stats_.max_queue_depth,
                     static_cast<uint64_t>(tasks_.size()));
    }
    not_empty_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock, [this] { return tasks_.empty() && running_ == 0; });
    if (first_error_) {
        std::exception_ptr error = first_error_;
        first_error_ = nullptr;
        std::rethrow_exception(error);
    }
}

void
ThreadPool::workerLoop(int worker_id)
{
    Stats::Worker &me = stats_.workers[static_cast<size_t>(worker_id)];
    for (;;) {
        std::function<void()> task;
        std::chrono::steady_clock::time_point started;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            const auto idle_from = std::chrono::steady_clock::now();
            not_empty_.wait(lock, [this] {
                return stopping_ || !tasks_.empty();
            });
            started = std::chrono::steady_clock::now();
            me.idle_seconds +=
                std::chrono::duration<double>(started - idle_from)
                    .count();
            if (tasks_.empty())
                return; // stopping_ with a drained queue
            task = std::move(tasks_.front());
            tasks_.pop();
            ++running_;
        }
        not_full_.notify_one();

        try {
            task();
        } catch (...) {
            std::lock_guard<std::mutex> lock(mutex_);
            if (!first_error_)
                first_error_ = std::current_exception();
        }

        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++me.tasks;
            me.busy_seconds +=
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - started)
                    .count();
            --running_;
            if (tasks_.empty() && running_ == 0)
                idle_.notify_all();
        }
    }
}

ThreadPool::Stats
ThreadPool::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

void
ThreadPool::noteIndicesClaimed(uint64_t count)
{
    if (count == 0)
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    size_t worker = static_cast<size_t>(t_worker_id);
    if (worker >= stats_.workers.size())
        worker = 0;
    stats_.workers[worker].indices += count;
}

int
defaultJobs()
{
    if (const char *env = std::getenv("CAPSIM_JOBS")) {
        char *end = nullptr;
        long parsed = std::strtol(env, &end, 10);
        if (end && *end == '\0' && parsed > 0)
            return static_cast<int>(parsed);
    }
    unsigned hardware = std::thread::hardware_concurrency();
    return hardware ? static_cast<int>(hardware) : 1;
}

void
parallelFor(ThreadPool &pool, size_t count,
            const std::function<void(size_t)> &body)
{
    if (count == 0)
        return;
    if (pool.threadCount() <= 1 || count == 1) {
        for (size_t i = 0; i < count; ++i)
            body(i);
        pool.noteIndicesClaimed(count);
        return;
    }

    // Self-scheduling: each lane steals the next unclaimed index, so
    // expensive cells don't serialize behind a static partition.
    std::atomic<size_t> cursor{0};
    std::atomic<bool> failed{false};
    size_t lanes = std::min(static_cast<size_t>(pool.threadCount()), count);
    for (size_t lane = 0; lane < lanes; ++lane) {
        pool.submit([&cursor, &failed, &body, &pool, count] {
            size_t i;
            uint64_t claimed = 0;
            while (!failed.load(std::memory_order_relaxed) &&
                   (i = cursor.fetch_add(1)) < count) {
                ++claimed;
                try {
                    body(i);
                } catch (...) {
                    failed.store(true, std::memory_order_relaxed);
                    pool.noteIndicesClaimed(claimed);
                    throw;
                }
            }
            pool.noteIndicesClaimed(claimed);
        });
    }
    pool.wait();
}

void
parallelFor(int jobs, size_t count,
            const std::function<void(size_t)> &body)
{
    if (jobs <= 1 || count <= 1) {
        for (size_t i = 0; i < count; ++i)
            body(i);
        return;
    }
    ThreadPool pool(jobs);
    parallelFor(pool, count, body);
}

} // namespace cap
