/**
 * @file
 * Tests of the parallel execution engine: the thread pool itself,
 * and the differential guarantee that a study fanned across N
 * workers is bit-identical to the serial run.
 */

#include <atomic>
#include <chrono>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "core/interval_controller.h"
#include "core/machine.h"
#include "trace/workloads.h"
#include "util/parallel.h"

namespace cap {
namespace {

// ---------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------

TEST(ThreadPoolTest, RunsEverySubmittedTask)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.threadCount(), 4);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ClampsToOneWorker)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.threadCount(), 1);
    std::atomic<int> count{0};
    pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks)
{
    std::atomic<int> count{0};
    {
        ThreadPool pool(2, /*queue_capacity=*/4);
        for (int i = 0; i < 64; ++i) {
            pool.submit([&count] {
                std::this_thread::sleep_for(std::chrono::microseconds(50));
                ++count;
            });
        }
        // No wait(): shutdown itself must finish the backlog.
    }
    EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPoolTest, WaitPropagatesTaskExceptionAndPoolSurvives)
{
    ThreadPool pool(2);
    pool.submit([] { throw std::runtime_error("task failed"); });
    EXPECT_THROW(pool.wait(), std::runtime_error);

    // The error is consumed; the pool keeps working.
    std::atomic<int> count{0};
    pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPoolTest, BoundedQueueStillCompletesUnderBackpressure)
{
    ThreadPool pool(2, /*queue_capacity=*/2);
    std::atomic<int> count{0};
    for (int i = 0; i < 200; ++i)
        pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 200);
}

// ---------------------------------------------------------------------
// parallelFor
// ---------------------------------------------------------------------

TEST(ParallelForTest, CoversEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    std::vector<int> visits(10000, 0);
    parallelFor(pool, visits.size(), [&](size_t i) { ++visits[i]; });
    for (size_t i = 0; i < visits.size(); ++i)
        ASSERT_EQ(visits[i], 1) << "index " << i;
}

TEST(ParallelForTest, SingleJobRunsInlineInOrder)
{
    std::vector<size_t> order;
    std::thread::id caller = std::this_thread::get_id();
    parallelFor(1, 16, [&](size_t i) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        order.push_back(i);
    });
    ASSERT_EQ(order.size(), 16u);
    for (size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i);
}

TEST(ParallelForTest, ZeroCountIsANoOp)
{
    ThreadPool pool(2);
    parallelFor(pool, 0, [](size_t) { FAIL() << "must not be called"; });
}

TEST(ParallelForTest, PropagatesBodyException)
{
    ThreadPool pool(4);
    EXPECT_THROW(parallelFor(pool, 1000,
                             [](size_t i) {
                                 if (i == 17)
                                     throw std::runtime_error("cell 17");
                             }),
                 std::runtime_error);
}

TEST(ParallelForTest, TransientPoolOverloadCovers)
{
    std::vector<int> visits(257, 0);
    parallelFor(3, visits.size(), [&](size_t i) { ++visits[i]; });
    for (size_t i = 0; i < visits.size(); ++i)
        ASSERT_EQ(visits[i], 1);
}

TEST(DefaultJobsTest, AtLeastOneWorker)
{
    EXPECT_GE(defaultJobs(), 1);
}

// ---------------------------------------------------------------------
// Differential: parallel studies must be bit-identical to serial.
// ---------------------------------------------------------------------

TEST(ParallelStudyTest, CacheStudyBitIdenticalAcrossJobs)
{
    core::AdaptiveCacheModel model;
    std::vector<trace::AppProfile> apps = {trace::findApp("li"),
                                           trace::findApp("stereo"),
                                           trace::findApp("gcc")};
    core::CacheStudy serial = core::runCacheStudy(model, apps, 30000, 8, 1);
    core::CacheStudy parallel =
        core::runCacheStudy(model, apps, 30000, 8, 4);

    auto serial_tpi = serial.tpiMatrix();
    auto parallel_tpi = parallel.tpiMatrix();
    ASSERT_EQ(serial_tpi.size(), parallel_tpi.size());
    for (size_t a = 0; a < serial_tpi.size(); ++a) {
        ASSERT_EQ(serial_tpi[a].size(), parallel_tpi[a].size());
        for (size_t c = 0; c < serial_tpi[a].size(); ++c)
            EXPECT_EQ(serial_tpi[a][c], parallel_tpi[a][c])
                << "cell (" << a << ", " << c << ")";
    }
    EXPECT_EQ(serial.tpiMissMatrix(), parallel.tpiMissMatrix());
    EXPECT_EQ(serial.selection.best_conventional,
              parallel.selection.best_conventional);
    EXPECT_EQ(serial.selection.per_app_best,
              parallel.selection.per_app_best);
    EXPECT_EQ(serial.telemetry.jobs, 1);
    EXPECT_EQ(parallel.telemetry.jobs, 4);
}

TEST(ParallelStudyTest, IqStudyBitIdenticalAcrossJobs)
{
    core::AdaptiveIqModel model;
    std::vector<trace::AppProfile> apps = {trace::findApp("appcg"),
                                           trace::findApp("li")};
    core::IqStudy serial = core::runIqStudy(model, apps, 30000, 1);
    core::IqStudy parallel = core::runIqStudy(model, apps, 30000, 4);
    EXPECT_EQ(serial.tpiMatrix(), parallel.tpiMatrix());
    EXPECT_EQ(serial.selection.per_app_best,
              parallel.selection.per_app_best);
    for (size_t a = 0; a < serial.perf.size(); ++a) {
        for (size_t c = 0; c < serial.perf[a].size(); ++c) {
            EXPECT_EQ(serial.perf[a][c].cycles, parallel.perf[a][c].cycles);
            EXPECT_EQ(serial.perf[a][c].instructions,
                      parallel.perf[a][c].instructions);
        }
    }
}

TEST(ParallelStudyTest, IntervalOracleBitIdenticalAcrossJobs)
{
    core::AdaptiveIqModel model;
    const trace::AppProfile &app = trace::findApp("vortex");
    std::vector<int> candidates = core::AdaptiveIqModel::studySizes();
    core::IntervalRunResult serial = core::runIntervalOracle(
        model, app, 60000, candidates, core::kIntervalInstructions, true,
        core::kClockSwitchPenaltyCycles, 1);
    core::IntervalRunResult parallel = core::runIntervalOracle(
        model, app, 60000, candidates, core::kIntervalInstructions, true,
        core::kClockSwitchPenaltyCycles, 4);
    EXPECT_EQ(serial.total_time_ns, parallel.total_time_ns);
    EXPECT_EQ(serial.instructions, parallel.instructions);
    EXPECT_EQ(serial.reconfigurations, parallel.reconfigurations);
    EXPECT_EQ(serial.config_trace, parallel.config_trace);
}

TEST(ParallelStudyTest, TelemetryDescribesEveryCell)
{
    core::AdaptiveCacheModel model;
    std::vector<trace::AppProfile> apps = {trace::findApp("li"),
                                           trace::findApp("stereo")};
    // Per-config mode: one telemetry cell per (app, config).  The
    // default one-pass mode collapses each app's sweep into one cell;
    // OnePassTelemetryHasOneCellPerApp covers that shape.
    core::CacheStudy study =
        core::runCacheStudy(model, apps, 20000, 8, 2, {}, false);
    ASSERT_EQ(study.telemetry.cells.size(), apps.size() * 8u);
    std::set<std::string> seen_apps;
    for (const core::CellTelemetry &cell : study.telemetry.cells) {
        EXPECT_FALSE(cell.app.empty());
        EXPECT_FALSE(cell.config.empty());
        EXPECT_GE(cell.sim_seconds, 0.0);
        seen_apps.insert(cell.app);
    }
    EXPECT_EQ(seen_apps.size(), 2u);
    EXPECT_GE(study.telemetry.wall_seconds, 0.0);
    EXPECT_GE(study.telemetry.cellsPerSecond(), 0.0);
    EXPECT_EQ(study.telemetry.reconfigurations, 0u);
}

TEST(ParallelStudyTest, OnePassTelemetryHasOneCellPerApp)
{
    core::AdaptiveCacheModel model;
    std::vector<trace::AppProfile> apps = {trace::findApp("li"),
                                           trace::findApp("stereo")};
    core::CacheStudy study = core::runCacheStudy(model, apps, 20000, 8, 2);
    ASSERT_EQ(study.telemetry.cells.size(), apps.size());
    for (size_t a = 0; a < apps.size(); ++a) {
        EXPECT_EQ(study.telemetry.cells[a].app, apps[a].name);
        EXPECT_EQ(study.telemetry.cells[a].config, "onepass x8");
    }
}

TEST(ParallelStudyTest, TelemetryJsonIsWellFormed)
{
    core::AdaptiveIqModel model;
    std::vector<trace::AppProfile> apps = {trace::findApp("li")};
    core::IqStudy study = core::runIqStudy(model, apps, 20000, 2);
    std::ostringstream os;
    study.telemetry.writeJson(os);
    std::string json = os.str();
    EXPECT_NE(json.find("\"jobs\": 2"), std::string::npos);
    EXPECT_NE(json.find("\"per_cell\": ["), std::string::npos);
    EXPECT_NE(json.find("\"app\": \"li\""), std::string::npos);
    EXPECT_NE(json.find("\"config\": \"onepass x8\""), std::string::npos);
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json[json.size() - 2], '}');
}

} // namespace
} // namespace cap
