/**
 * @file
 * Regenerates Figure 1: cache address-bus wire delay as a function of
 * the number of subarrays and technology generation, for (a) 2 KB and
 * (b) 4 KB subarrays.
 */

#include "bench_common.h"
#include "timing/area.h"
#include "timing/technology.h"
#include "timing/wire.h"
#include "util/units.h"

namespace {

using namespace cap;
using namespace cap::timing;

void
runPanel(char panel, uint64_t subarray_bytes)
{
    WireModel w250(Technology::um250());
    WireModel w180(Technology::um180());
    WireModel w120(Technology::um120());

    TableWriter table(std::string("Figure 1") + panel + ": " +
                      std::to_string(subarray_bytes / 1024) +
                      "KB subarrays, address-bus wire delay (ns)");
    table.setHeader({"subarrays", "total_KB", "wire_mm", "unbuffered",
                     "buffered_0.25u", "buffered_0.18u",
                     "buffered_0.12u"});
    double pitch = AreaModel::subarrayPitchMm(subarray_bytes);
    for (int n = 4; n <= 16; n += 2) {
        double len = pitch * n;
        table.addRow({n,
                      static_cast<int>(n * subarray_bytes / 1024),
                      Cell(len, 3),
                      Cell(w250.unbufferedDelay(len), 3),
                      Cell(w250.bufferedDelay(len), 3),
                      Cell(w180.bufferedDelay(len), 3),
                      Cell(w120.bufferedDelay(len), 3)});
    }
    bench::emit(table);
}

} // namespace

int
main()
{
    cap::bench::banner(
        "Figure 1: cache wire delay vs subarray count and feature size",
        "one technology-independent unbuffered curve growing "
        "superlinearly; buffered curves linear, improving with smaller "
        "features; with 2KB subarrays, buffering wins for >=16KB caches "
        "at 0.18um; with 4KB subarrays, clearly for >=32KB");
    runPanel('a', cap::kib(2));
    runPanel('b', cap::kib(4));
    return 0;
}
