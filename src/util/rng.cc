#include "rng.h"

#include <cmath>

#include "status.h"

namespace cap {

namespace {

/** splitmix64: expands a single seed into well-mixed state words. */
uint64_t
splitmix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto &word : s_)
        word = splitmix64(sm);
    // xoshiro's all-zero state is absorbing; splitmix64 cannot produce
    // four zero words from any seed, but guard anyway.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0)
        s_[0] = 1;
}

uint64_t
Rng::next()
{
    uint64_t result = rotl(s_[1] * 5, 7) * 9;
    uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

uint64_t
Rng::below(uint64_t bound)
{
    capAssert(bound > 0, "Rng::below requires a positive bound");
    // Debiased multiply-shift (Lemire).
    while (true) {
        uint64_t x = next();
        __uint128_t m = static_cast<__uint128_t>(x) * bound;
        uint64_t low = static_cast<uint64_t>(m);
        if (low >= bound || low >= (-bound) % bound)
            return static_cast<uint64_t>(m >> 64);
    }
}

int64_t
Rng::range(int64_t lo, int64_t hi)
{
    capAssert(lo <= hi, "Rng::range requires lo <= hi");
    uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(below(span));
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

uint64_t
Rng::geometric(double p, uint64_t cap)
{
    capAssert(p > 0.0 && p <= 1.0, "geometric requires p in (0,1]");
    if (p >= 1.0)
        return 0;
    double u = uniform();
    // Inverse CDF; u == 0 maps to 0 failures.
    double draw = std::floor(std::log1p(-u) / std::log1p(-p));
    if (draw < 0.0)
        draw = 0.0;
    uint64_t k = static_cast<uint64_t>(draw);
    return k > cap ? cap : k;
}

size_t
Rng::weighted(const std::vector<double> &weights)
{
    capAssert(!weights.empty(), "weighted draw over empty weights");
    double total = 0.0;
    for (double w : weights) {
        capAssert(w >= 0.0, "negative weight");
        total += w;
    }
    capAssert(total > 0.0, "weighted draw needs a positive total");
    double target = uniform() * total;
    double acc = 0.0;
    for (size_t i = 0; i < weights.size(); ++i) {
        acc += weights[i];
        if (target < acc)
            return i;
    }
    return weights.size() - 1;
}

uint64_t
Rng::zipf(uint64_t n, double s)
{
    capAssert(n > 0, "zipf over empty range");
    // Rejection-inversion would be overkill; workloads use small s and
    // moderate n, so a two-piece approximation of the harmonic CDF is
    // adequate and deterministic.
    double u = uniform();
    if (s <= 0.0)
        return below(n);
    // Normalizing constant via the integral approximation of the
    // generalized harmonic number.
    auto hInt = [s](double x) {
        if (std::abs(s - 1.0) < 1e-9)
            return std::log(x + 1.0);
        return (std::pow(x + 1.0, 1.0 - s) - 1.0) / (1.0 - s);
    };
    double total = hInt(static_cast<double>(n));
    double target = u * total;
    // Invert the integral approximation.
    double x;
    if (std::abs(s - 1.0) < 1e-9) {
        x = std::exp(target) - 1.0;
    } else {
        x = std::pow(target * (1.0 - s) + 1.0, 1.0 / (1.0 - s)) - 1.0;
    }
    if (x < 0.0)
        x = 0.0;
    uint64_t k = static_cast<uint64_t>(x);
    return k >= n ? n - 1 : k;
}

Rng
Rng::split()
{
    return Rng(next() ^ 0xd3833e804f4c574bULL);
}

Rng::State
Rng::saveState() const
{
    return {s_[0], s_[1], s_[2], s_[3]};
}

void
Rng::restoreState(const State &state)
{
    capAssert((state[0] | state[1] | state[2] | state[3]) != 0,
              "all-zero Rng state is absorbing");
    for (size_t i = 0; i < 4; ++i)
        s_[i] = state[i];
}

} // namespace cap
