/**
 * @file
 * capsim: command-line entry point (see src/cli/cli.h).
 */

#include <iostream>
#include <string>
#include <vector>

#include "cli/cli.h"

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    return cap::cli::runCommand(args, std::cout, std::cerr);
}
