/**
 * @file
 * Regenerates Figure 10: average TPI as a function of the (fixed)
 * instruction-queue size for every application, split into integer
 * (a) and floating-point (b) panels.
 */

#include <iostream>

#include "bench_common.h"
#include "bench_study.h"

namespace {

using namespace cap;
using namespace cap::bench;

void
panel(const core::IqStudy &study, char label, bool integer_panel)
{
    TableWriter table(std::string("Figure 10") + label +
                      ": avg TPI (ns) vs instruction-queue size -- " +
                      (integer_panel ? "integer" : "floating-point") +
                      " benchmarks");
    std::vector<std::string> header{"app"};
    for (const core::IqTiming &t : study.timings)
        header.push_back(std::to_string(t.entries));
    header.push_back("best");
    table.setHeader(header);

    for (size_t a = 0; a < study.apps.size(); ++a) {
        bool is_int = study.apps[a].suite == trace::Suite::SpecInt;
        if (is_int != integer_panel)
            continue;
        std::vector<Cell> row{Cell(study.apps[a].name)};
        size_t best = 0;
        for (size_t c = 0; c < study.perf[a].size(); ++c) {
            row.emplace_back(study.perf[a][c].tpi_ns, 3);
            if (study.perf[a][c].tpi_ns < study.perf[a][best].tpi_ns)
                best = c;
        }
        row.emplace_back(std::to_string(study.timings[best].entries));
        table.addRow(row);
    }
    emit(table);
}

} // namespace

int
main()
{
    banner("Figure 10: diversity of instruction-queue requirements",
           "most applications perform best with the 64-entry queue; "
           "compress favors 128; radar, fpppp and appcg favor 16");
    core::IqStudy study = paperIqStudy();
    std::cout << "instructions per (app, config): " << iqInstrs() << "\n\n";

    TableWriter clocks("Queue cycle-time table (wakeup+select, 0.18um)");
    clocks.setHeader({"entries", "cycle_ns"});
    for (const core::IqTiming &t : study.timings)
        clocks.addRow({t.entries, Cell(t.cycle_ns, 3)});
    emit(clocks);

    panel(study, 'a', true);
    panel(study, 'b', false);
    return 0;
}
