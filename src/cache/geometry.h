/**
 * @file
 * Geometry of the complexity-adaptive cache hierarchy (paper Figure 6).
 *
 * The structure is a single pool of identical cache increments, each a
 * complete subcache (tag + data + local hit logic), stacked along
 * repeater-buffered global address/data buses.  A movable boundary
 * assigns the first K increments to the L1 D-cache and the rest to the
 * L2.  The paper's mapping rule -- adding an increment to L1 grows its
 * size *and* associativity by the increment's -- is realized by giving
 * the whole pool one fixed set index: increments contribute ways, so
 * the index and tag bits never change when the boundary moves and no
 * data needs to be invalidated or copied on reconfiguration.
 */

#ifndef CAPSIM_CACHE_GEOMETRY_H
#define CAPSIM_CACHE_GEOMETRY_H

#include <cstdint>

#include "util/units.h"

namespace cap::cache {

/** Static geometry of the increment pool. */
struct HierarchyGeometry
{
    /** Number of identical cache increments in the pool. */
    int increments = 16;
    /** Capacity of one increment, bytes. */
    uint64_t increment_bytes = kib(8);
    /** Associativity contributed by one increment. */
    int increment_assoc = 2;
    /** Cache-block size, bytes. */
    uint64_t block_bytes = 32;
    /** Internal banking of each increment. */
    int increment_banks = 2;

    /** Total pool capacity, bytes. */
    uint64_t totalBytes() const
    {
        return static_cast<uint64_t>(increments) * increment_bytes;
    }

    /** Set count shared by every boundary placement. */
    uint64_t sets() const
    {
        return increment_bytes /
               (static_cast<uint64_t>(increment_assoc) * block_bytes);
    }

    /** Total ways across the pool. */
    int totalWays() const { return increments * increment_assoc; }

    /** Ways belonging to L1 when the boundary is at @p l1_increments. */
    int l1Ways(int l1_increments) const
    {
        return l1_increments * increment_assoc;
    }

    /** L1 capacity at a boundary, bytes. */
    uint64_t l1Bytes(int l1_increments) const
    {
        return static_cast<uint64_t>(l1_increments) * increment_bytes;
    }

    /** Set index of an address (fixed for every configuration). */
    uint64_t setIndex(Addr addr) const
    {
        return (addr / block_bytes) % sets();
    }

    /** Tag of an address (fixed for every configuration). */
    uint64_t tag(Addr addr) const
    {
        return (addr / block_bytes) / sets();
    }

    /** The increment that physically holds a given way. */
    int incrementOfWay(int way) const { return way / increment_assoc; }

    /** Validate and panic on inconsistent geometry. */
    void validate() const;
};

} // namespace cap::cache

#endif // CAPSIM_CACHE_GEOMETRY_H
