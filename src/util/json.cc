#include "json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "status.h"

namespace cap::json {

std::string
escape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (char ch : text) {
        switch (ch) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(ch) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
                out += buf;
            } else {
                out += ch;
            }
        }
    }
    return out;
}

std::string
quote(const std::string &text)
{
    return "\"" + escape(text) + "\"";
}

void
rawField(std::ostream &os, const char *key, const std::string &raw)
{
    os << ", \"" << key << "\": " << raw;
}

Writer &
Writer::beginObject()
{
    preValue();
    os_ << '{';
    stack_.push_back(Frame{true, false, 0});
    return *this;
}

Writer &
Writer::endObject()
{
    capAssert(!stack_.empty() && stack_.back().object,
              "endObject without matching beginObject");
    capAssert(!stack_.back().pending_key, "dangling key before endObject");
    os_ << '}';
    stack_.pop_back();
    return *this;
}

Writer &
Writer::beginArray()
{
    preValue();
    os_ << '[';
    stack_.push_back(Frame{false, false, 0});
    return *this;
}

Writer &
Writer::endArray()
{
    capAssert(!stack_.empty() && !stack_.back().object,
              "endArray without matching beginArray");
    os_ << ']';
    stack_.pop_back();
    return *this;
}

Writer &
Writer::key(const std::string &name)
{
    capAssert(!stack_.empty() && stack_.back().object,
              "key() outside an object");
    capAssert(!stack_.back().pending_key, "key() after key()");
    if (stack_.back().members)
        os_ << ',';
    os_ << quote(name) << ':';
    stack_.back().pending_key = true;
    return *this;
}

void
Writer::preValue()
{
    if (stack_.empty())
        return;
    Frame &top = stack_.back();
    if (top.object) {
        capAssert(top.pending_key, "object value without key()");
        top.pending_key = false;
    } else if (top.members) {
        os_ << ',';
    }
    ++top.members;
}

Writer &
Writer::value(const std::string &text)
{
    preValue();
    os_ << quote(text);
    return *this;
}

Writer &
Writer::value(const char *text)
{
    return value(std::string(text));
}

Writer &
Writer::value(bool flag)
{
    preValue();
    os_ << (flag ? "true" : "false");
    return *this;
}

Writer &
Writer::value(uint64_t n)
{
    preValue();
    os_ << n;
    return *this;
}

Writer &
Writer::value(int64_t n)
{
    preValue();
    os_ << n;
    return *this;
}

Writer &
Writer::value(double x, int precision)
{
    preValue();
    if (!std::isfinite(x)) {
        os_ << "null";
        return *this;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, x);
    os_ << buf;
    return *this;
}

Writer &
Writer::rawValue(const std::string &raw)
{
    preValue();
    os_ << raw;
    return *this;
}

const Value *
Value::find(const std::string &key) const
{
    if (type != Type::Object)
        return nullptr;
    for (const auto &[name, member] : object) {
        if (name == key)
            return &member;
    }
    return nullptr;
}

std::string
Value::stringOr(const std::string &key, const std::string &fallback) const
{
    const Value *v = find(key);
    return v && v->type == Type::String ? v->string : fallback;
}

double
Value::numberOr(const std::string &key, double fallback) const
{
    const Value *v = find(key);
    return v && v->type == Type::Number ? v->number : fallback;
}

uint64_t
Value::u64Or(const std::string &key, uint64_t fallback) const
{
    const Value *v = find(key);
    if (!v)
        return fallback;
    if (v->type == Type::Number && v->number >= 0.0)
        return static_cast<uint64_t>(v->number);
    if (v->type == Type::String) {
        uint64_t out = 0;
        if (parseU64(v->string, out))
            return out;
    }
    return fallback;
}

bool
Value::boolOr(const std::string &key, bool fallback) const
{
    const Value *v = find(key);
    return v && v->type == Type::Bool ? v->boolean : fallback;
}

namespace {

constexpr int kMaxDepth = 64;

/** Cursor over the input; all parse* helpers leave pos at the first
 *  unconsumed byte and report errors by message. */
struct Cursor
{
    const std::string &text;
    size_t pos = 0;
    std::string error;

    bool fail(const std::string &message)
    {
        if (error.empty())
            error = message + " at offset " + std::to_string(pos);
        return false;
    }

    void skipSpace()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' ||
                text[pos] == '\n' || text[pos] == '\r'))
            ++pos;
    }

    bool consume(char ch)
    {
        if (pos < text.size() && text[pos] == ch) {
            ++pos;
            return true;
        }
        return false;
    }
};

bool parseValue(Cursor &cur, Value &out, int depth);

bool
parseLiteral(Cursor &cur, const char *word, size_t len)
{
    if (cur.text.compare(cur.pos, len, word) != 0)
        return cur.fail("invalid literal");
    cur.pos += len;
    return true;
}

bool
parseString(Cursor &cur, std::string &out)
{
    if (!cur.consume('"'))
        return cur.fail("expected string");
    out.clear();
    while (cur.pos < cur.text.size()) {
        char ch = cur.text[cur.pos++];
        if (ch == '"')
            return true;
        if (ch != '\\') {
            out += ch;
            continue;
        }
        if (cur.pos >= cur.text.size())
            return cur.fail("truncated escape");
        char esc = cur.text[cur.pos++];
        switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
            if (cur.pos + 4 > cur.text.size())
                return cur.fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
                char hex = cur.text[cur.pos++];
                code <<= 4;
                if (hex >= '0' && hex <= '9')
                    code |= static_cast<unsigned>(hex - '0');
                else if (hex >= 'a' && hex <= 'f')
                    code |= static_cast<unsigned>(hex - 'a' + 10);
                else if (hex >= 'A' && hex <= 'F')
                    code |= static_cast<unsigned>(hex - 'A' + 10);
                else
                    return cur.fail("bad \\u digit");
            }
            // Our emitters only produce \u00xx (control bytes); decode
            // anything <= 0x7f as one byte, otherwise UTF-8 encode.
            if (code < 0x80) {
                out += static_cast<char>(code);
            } else if (code < 0x800) {
                out += static_cast<char>(0xc0 | (code >> 6));
                out += static_cast<char>(0x80 | (code & 0x3f));
            } else {
                out += static_cast<char>(0xe0 | (code >> 12));
                out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
                out += static_cast<char>(0x80 | (code & 0x3f));
            }
            break;
        }
        default:
            return cur.fail("bad escape character");
        }
    }
    return cur.fail("unterminated string");
}

bool
parseNumber(Cursor &cur, double &out)
{
    size_t start = cur.pos;
    if (cur.pos < cur.text.size() && cur.text[cur.pos] == '-')
        ++cur.pos;
    while (cur.pos < cur.text.size() &&
           (std::isdigit(static_cast<unsigned char>(cur.text[cur.pos])) ||
            cur.text[cur.pos] == '.' || cur.text[cur.pos] == 'e' ||
            cur.text[cur.pos] == 'E' || cur.text[cur.pos] == '+' ||
            cur.text[cur.pos] == '-'))
        ++cur.pos;
    if (cur.pos == start)
        return cur.fail("expected number");
    std::string token = cur.text.substr(start, cur.pos - start);
    char *end = nullptr;
    out = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size())
        return cur.fail("malformed number");
    return true;
}

bool
parseValue(Cursor &cur, Value &out, int depth)
{
    if (depth > kMaxDepth)
        return cur.fail("nesting too deep");
    cur.skipSpace();
    if (cur.pos >= cur.text.size())
        return cur.fail("unexpected end of input");
    char ch = cur.text[cur.pos];
    if (ch == '{') {
        ++cur.pos;
        out.type = Value::Type::Object;
        cur.skipSpace();
        if (cur.consume('}'))
            return true;
        for (;;) {
            cur.skipSpace();
            std::string key;
            if (!parseString(cur, key))
                return false;
            cur.skipSpace();
            if (!cur.consume(':'))
                return cur.fail("expected ':'");
            Value member;
            if (!parseValue(cur, member, depth + 1))
                return false;
            out.object.emplace_back(std::move(key), std::move(member));
            cur.skipSpace();
            if (cur.consume(','))
                continue;
            if (cur.consume('}'))
                return true;
            return cur.fail("expected ',' or '}'");
        }
    }
    if (ch == '[') {
        ++cur.pos;
        out.type = Value::Type::Array;
        cur.skipSpace();
        if (cur.consume(']'))
            return true;
        for (;;) {
            Value element;
            if (!parseValue(cur, element, depth + 1))
                return false;
            out.array.push_back(std::move(element));
            cur.skipSpace();
            if (cur.consume(','))
                continue;
            if (cur.consume(']'))
                return true;
            return cur.fail("expected ',' or ']'");
        }
    }
    if (ch == '"') {
        out.type = Value::Type::String;
        return parseString(cur, out.string);
    }
    if (ch == 't') {
        out.type = Value::Type::Bool;
        out.boolean = true;
        return parseLiteral(cur, "true", 4);
    }
    if (ch == 'f') {
        out.type = Value::Type::Bool;
        out.boolean = false;
        return parseLiteral(cur, "false", 5);
    }
    if (ch == 'n') {
        out.type = Value::Type::Null;
        return parseLiteral(cur, "null", 4);
    }
    out.type = Value::Type::Number;
    return parseNumber(cur, out.number);
}

} // namespace

bool
parse(const std::string &text, Value &out, std::string &error)
{
    Cursor cur{text, 0, {}};
    out = Value{};
    if (!parseValue(cur, out, 0)) {
        error = cur.error;
        return false;
    }
    cur.skipSpace();
    if (cur.pos != text.size()) {
        error = "trailing characters at offset " + std::to_string(cur.pos);
        return false;
    }
    return true;
}

bool
parseU64(const std::string &text, uint64_t &out)
{
    if (text.empty() || text.size() > 20)
        return false;
    uint64_t value = 0;
    for (char ch : text) {
        if (ch < '0' || ch > '9')
            return false;
        uint64_t digit = static_cast<uint64_t>(ch - '0');
        if (value > (UINT64_MAX - digit) / 10)
            return false;
        value = value * 10 + digit;
    }
    out = value;
    return true;
}

std::string
doubleBits(double x)
{
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(x), "double must be 64-bit");
    std::memcpy(&bits, &x, sizeof(bits));
    return std::to_string(bits);
}

bool
doubleFromBits(const std::string &text, double &out)
{
    uint64_t bits = 0;
    if (!parseU64(text, bits))
        return false;
    std::memcpy(&out, &bits, sizeof(out));
    return true;
}

} // namespace cap::json
