#include "adaptive_bpred.h"

#include <cmath>
#include <map>

#include "util/status.h"

namespace cap::core {

namespace {

// Table read path at the 0.25 um reference, ns: decode + wordline +
// bitline + sense, with the non-scaling bitline wire term carried by
// the per-row constant.  Calibrated so tables up to 2K entries fit
// under the smallest cache cycle at 0.18 um while 8K entries do not.
constexpr double kReadFixed = 0.48;
constexpr double kReadPerLog2Entry = 0.028;
constexpr double kReadWirePerKEntry = 0.022;



} // namespace

BpredBehavior
bpredBehaviorFor(const std::string &app_name)
{
    using ooo::BranchBehavior;
    // Integer codes: many static branches, moderate predictability;
    // loop-dominated fp codes: few, highly biased branches.
    static const std::map<std::string, BpredBehavior> exceptions = {
        {"gcc", {0.17, BranchBehavior{4096, 0.55, 0.04, 5, 0.12}}},
        {"go", {0.16, BranchBehavior{5000, 0.45, 0.06, 4, 0.16}}},
        {"vortex", {0.16, BranchBehavior{3072, 0.65, 0.03, 5, 0.10}}},
        {"perl", {0.17, BranchBehavior{2048, 0.60, 0.04, 5, 0.10}}},
        {"li", {0.18, BranchBehavior{1024, 0.60, 0.04, 4, 0.10}}},
        {"m88ksim", {0.15, BranchBehavior{1024, 0.70, 0.03, 5, 0.08}}},
        {"compress", {0.14, BranchBehavior{512, 0.50, 0.08, 3, 0.14}}},
        {"ijpeg", {0.10, BranchBehavior{768, 0.75, 0.02, 6, 0.06}}},
        // fp / scientific: small branch footprints, strongly biased.
        {"tomcatv", {0.04, BranchBehavior{128, 0.92, 0.01, 8, 0.03}}},
        {"swim", {0.03, BranchBehavior{128, 0.92, 0.01, 8, 0.03}}},
        {"mgrid", {0.03, BranchBehavior{128, 0.95, 0.01, 8, 0.02}}},
        {"applu", {0.04, BranchBehavior{192, 0.92, 0.01, 8, 0.03}}},
        {"appcg", {0.05, BranchBehavior{96, 0.95, 0.01, 8, 0.02}}},
        {"fpppp", {0.02, BranchBehavior{96, 0.95, 0.01, 8, 0.02}}},
    };
    auto it = exceptions.find(app_name);
    if (it != exceptions.end())
        return it->second;
    return BpredBehavior{};
}

AdaptiveBpredModel::AdaptiveBpredModel(const timing::Technology &tech)
    : tech_(&tech)
{
}

std::vector<int>
AdaptiveBpredModel::studySizes()
{
    return {512, 1024, 2048, 4096, 8192};
}

Nanoseconds
AdaptiveBpredModel::lookupNs(int entries) const
{
    capAssert(entries >= 2 && isPowerOfTwo(static_cast<uint64_t>(entries)),
              "table entries must be a power of two");
    double log2_entries =
        static_cast<double>(floorLog2(static_cast<uint64_t>(entries)));
    return tech_->deviceScale() *
               (kReadFixed + kReadPerLog2Entry * log2_entries) +
           kReadWirePerKEntry * static_cast<double>(entries) / 1024.0;
}

BpredPerf
AdaptiveBpredModel::evaluate(const trace::AppProfile &app, int entries,
                             uint64_t branches) const
{
    capAssert(branches > 0, "evaluation needs branches");
    BpredBehavior behavior = bpredBehaviorFor(app.name);
    // Bimodal evaluation: the synthetic stream's sites are mutually
    // uncorrelated, so table *capacity* (aliasing among static sites)
    // is the property being studied; gshare's history would only
    // scramble the index on such a stream.
    ooo::BranchStream stream(behavior.stream, app.seed ^ 0xb9edULL);
    ooo::BimodalPredictor predictor(entries);
    for (uint64_t i = 0; i < branches; ++i)
        predictor.predictAndUpdate(stream.next());

    BpredPerf perf;
    perf.entries = entries;
    perf.mispredict_ratio = predictor.stats().mispredictRatio();
    perf.lookup_ns = lookupNs(entries);
    return perf;
}

} // namespace cap::core
