/**
 * @file
 * Ablation: queue reclamation discipline.
 *
 * The paper's IPC numbers come from SimpleScalar, whose RUU frees
 * entries in program order -- that is what makes queue size bound the
 * machine's lookahead.  A collapsing queue backed by a separate
 * reorder buffer frees entries at issue and exposes far more
 * lookahead per entry.  This bench quantifies the difference, which
 * is also the sensitivity of the whole Figure 10/11 study to the
 * simulation model.
 */

#include <iostream>

#include "bench_common.h"
#include "core/adaptive_iq.h"
#include "ooo/core_model.h"
#include "ooo/stream.h"
#include "trace/workloads.h"

namespace {

using namespace cap;

double
ipcWith(const trace::AppProfile &app, int entries, bool free_at_issue,
        uint64_t instrs)
{
    ooo::InstructionStream stream(app.ilp, app.seed);
    ooo::CoreParams params;
    params.queue_entries = entries;
    params.free_at_issue = free_at_issue;
    ooo::CoreModel model(stream, params);
    return model.step(instrs).ipc();
}

} // namespace

int
main()
{
    using namespace cap::bench;

    banner("Ablation: RUU (in-order free) vs collapsing queue "
           "(free at issue)",
           "the collapsing queue reaches near-maximal IPC with a tiny "
           "window, flattening the IPC-vs-size curve the whole "
           "adaptive-queue tradeoff rests on; the RUU discipline "
           "(SimpleScalar's, used by the paper) keeps window size "
           "meaningful");

    core::AdaptiveIqModel model;
    uint64_t instrs = iqInstrs();
    std::cout << "instructions per run: " << instrs << "\n\n";

    TableWriter table("IPC by discipline and queue size");
    table.setHeader({"app", "ruu_16", "ruu_64", "ruu_128", "collapse_16",
                     "collapse_64", "collapse_128"});
    for (const char *name : {"li", "gcc", "compress", "vortex", "swim"}) {
        const trace::AppProfile &app = trace::findApp(name);
        table.addRow({Cell(name),
                      Cell(ipcWith(app, 16, false, instrs), 2),
                      Cell(ipcWith(app, 64, false, instrs), 2),
                      Cell(ipcWith(app, 128, false, instrs), 2),
                      Cell(ipcWith(app, 16, true, instrs), 2),
                      Cell(ipcWith(app, 64, true, instrs), 2),
                      Cell(ipcWith(app, 128, true, instrs), 2)});
    }
    emit(table);
    return 0;
}
