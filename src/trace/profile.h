/**
 * @file
 * Application profiles: the workload substitution layer.
 *
 * The paper evaluates on Atom-gathered Alpha traces of SPEC95, three
 * CMU task-parallel applications (airshed, stereo, radar) and the NAS
 * appcg kernel.  Those traces are proprietary; CAPsim substitutes
 * deterministic synthetic generators, one profile per application,
 * calibrated to reproduce each application's *published* behaviour:
 *
 *  - the cache side (Figure 7): which L1 size minimizes TPI, where the
 *    curve flattens, how much of the reference stream misses beyond
 *    the on-chip hierarchy;
 *  - the ILP side (Figure 10): which instruction-queue size minimizes
 *    TPI, how IPC scales with window size, and (for turb3d and vortex)
 *    the phase structure Figures 12-13 show.
 *
 * See DESIGN.md "Substitutions" for the fidelity argument.
 */

#ifndef CAPSIM_TRACE_PROFILE_H
#define CAPSIM_TRACE_PROFILE_H

#include <cstdint>
#include <string>
#include <vector>

#include "util/units.h"

namespace cap::trace {

/** Benchmark suite an application belongs to. */
enum class Suite {
    SpecInt,
    SpecFp,
    Cmu,
    Nas,
};

/** Returns a display string for a suite. */
const char *suiteName(Suite suite);

/** Locality archetype of one component of the reference mix. */
enum class PatternKind {
    /** Zipf-skewed resident working set. */
    ZipfResident,
    /** Repeated sequential sweep (LRU cliff at the region size). */
    CyclicSweep,
    /** No-reuse streaming walk over a huge region. */
    Stream,
};

/** One weighted component of an application's reference mix. */
struct PatternSpec
{
    PatternKind kind = PatternKind::ZipfResident;
    /** Relative weight of this component in the mix. */
    double weight = 1.0;
    /** Region size in bytes. */
    uint64_t region_bytes = 0;
    /** Zipf exponent (ZipfResident only). */
    double zipf_s = 1.0;
    /** Accesses per block before advancing (Stream only). */
    int touches_per_block = 1;
};

/** One cache-side phase: a reference mix active for a stretch. */
struct CachePhase
{
    /** Weighted mixture of locality components. */
    std::vector<PatternSpec> mix;
    /** Phase length in references. */
    uint64_t length_refs = 1'000'000;
};

/** The data-reference (cache-study) side of an application. */
struct CacheBehavior
{
    /** Weighted mixture of locality components (the stable phase). */
    std::vector<PatternSpec> mix;
    /** Fraction of references that are stores. */
    double write_fraction = 0.3;
    /**
     * Data-cache references per instruction (loads+stores density);
     * converts reference counts into instruction counts for TPI.
     */
    double refs_per_instr = 0.35;
    /**
     * Optional phase schedule.  When non-empty, the generator cycles
     * through these phases (by reference count) instead of using
     * `mix`; regions of all phases are laid out disjointly, and each
     * phase keeps its pattern state across revisits (working sets
     * persist, as in a real program's loop nests).
     */
    std::vector<CachePhase> phases;
};

/**
 * Dependency/latency character of one execution phase for the
 * instruction-queue study.
 */
struct IlpPhase
{
    /**
     * Minimum dependency distance (software-pipelined/unrolled codes
     * place producers far from consumers; a floor above 1 removes the
     * tight-chain mass that otherwise caps the dataflow limit).
     */
    uint32_t min_dep_distance = 1;
    /**
     * Mean of the geometric dependency-distance draw *above* the
     * minimum for the first source operand (small = tight chains).
     */
    double mean_dep_distance = 8.0;
    /** Probability an instruction has a second source operand. */
    double second_src_prob = 0.5;
    /** Mean dependency distance of the second source. */
    double mean_dep_distance2 = 16.0;
    /** Probability of a long-latency operation. */
    double long_lat_prob = 0.05;
    /** Latency of long operations, cycles. */
    int long_lat_cycles = 8;
    /** Latency of ordinary operations, cycles. */
    int short_lat_cycles = 1;
};

/** One segment of an application's phase schedule. */
struct PhaseSegment
{
    /** Index into IlpBehavior::phases. */
    int phase = 0;
    /** Segment length in instructions. */
    uint64_t length_instrs = 1'000'000;
};

/** The instruction-stream (IQ-study) side of an application. */
struct IlpBehavior
{
    /** Distinct phase characters this application exhibits. */
    std::vector<IlpPhase> phases;
    /**
     * Phase schedule; segments play in order and the schedule loops.
     * A single segment means the application is phase-stable.
     */
    std::vector<PhaseSegment> schedule;
};

/** A complete synthetic application. */
struct AppProfile
{
    std::string name;
    Suite suite = Suite::SpecInt;
    /** Seed domain for all of this application's generators. */
    uint64_t seed = 1;
    CacheBehavior cache;
    IlpBehavior ilp;
    /**
     * True if the application participates in the cache study
     * (the paper could not instrument go with Atom).
     */
    bool in_cache_study = true;
};

} // namespace cap::trace

#endif // CAPSIM_TRACE_PROFILE_H
