/**
 * @file
 * Synthetic instruction-stream generator driven by an application's
 * IlpBehavior (phases + schedule).
 */

#ifndef CAPSIM_OOO_STREAM_H
#define CAPSIM_OOO_STREAM_H

#include <cstdint>

#include "ooo/op_source.h"
#include "ooo/uop.h"
#include "trace/profile.h"
#include "util/rng.h"

namespace cap::ooo {

/**
 * Produces the dynamic MicroOp stream of one application.  The phase
 * schedule is tracked by dispatched-instruction index; when the
 * schedule is exhausted it loops, matching the paper's observation of
 * repeating program behaviour.  Equal (behavior, seed) pairs generate
 * identical streams.
 */
class InstructionStream : public OpSource
{
  public:
    InstructionStream(const trace::IlpBehavior &behavior, uint64_t seed);

    /** Generate the next instruction. */
    MicroOp next();

    /**
     * Generate @p max instructions into @p out (the stream is
     * infinite, so the batch is always filled).  Semantically
     * identical to @p max next() calls -- same ops, same generator
     * state afterwards, including cursor equivalence -- but hoists
     * the per-op phase lookup out of the loop.  Returns @p max.
     */
    uint64_t nextBatch(MicroOp *out, uint64_t max) override;

    /** Index of the next instruction to be generated. */
    uint64_t position() const override { return position_; }

    /** Phase index active for the next instruction (test support). */
    int currentPhase() const;

    /**
     * A saved generator position (schedule state + Rng state); the
     * instruction-side counterpart of
     * trace::SyntheticTraceSource::Cursor.  Restoring into a stream
     * built from the same (behavior, seed) resumes the exact MicroOp
     * sequence.
     */
    struct Cursor
    {
        uint64_t position = 0;
        size_t segment = 0;
        uint64_t segment_left = 0;
        Rng::State rng_state{};
    };

    /** Snapshot the generator position. */
    Cursor saveCursor() const;

    /** Restore a position saved from an identically-built stream. */
    void restoreCursor(const Cursor &cursor);

  private:
    void advanceSegment();

    const trace::IlpBehavior behavior_;
    Rng rng_;
    uint64_t position_ = 0;
    size_t segment_ = 0;
    uint64_t segment_left_ = 0;
};

} // namespace cap::ooo

#endif // CAPSIM_OOO_STREAM_H
