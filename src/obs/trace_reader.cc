#include "trace_reader.h"

#include <cstdlib>
#include <map>

namespace cap::obs {

namespace {

/** Cursor over one line; fail() records the first error. */
struct Parser
{
    const std::string &text;
    size_t pos = 0;
    std::string error;

    explicit Parser(const std::string &line) : text(line) {}

    bool fail(const std::string &why)
    {
        if (error.empty())
            error = why;
        return false;
    }

    void skipSpace()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t'))
            ++pos;
    }

    bool expect(char ch)
    {
        skipSpace();
        if (pos >= text.size() || text[pos] != ch)
            return fail(std::string("expected '") + ch + "'");
        ++pos;
        return true;
    }

    bool parseString(std::string &out)
    {
        if (!expect('"'))
            return false;
        out.clear();
        while (pos < text.size()) {
            char ch = text[pos++];
            if (ch == '"')
                return true;
            if (ch != '\\') {
                out += ch;
                continue;
            }
            if (pos >= text.size())
                return fail("dangling escape");
            char esc = text[pos++];
            switch (esc) {
            case '"': out += '"'; break;
            case '\\': out += '\\'; break;
            case '/': out += '/'; break;
            case 'n': out += '\n'; break;
            case 't': out += '\t'; break;
            case 'r': out += '\r'; break;
            case 'b': out += '\b'; break;
            case 'f': out += '\f'; break;
            case 'u': {
                if (pos + 4 > text.size())
                    return fail("truncated \\u escape");
                unsigned code = static_cast<unsigned>(
                    std::strtoul(text.substr(pos, 4).c_str(), nullptr, 16));
                pos += 4;
                // The writer only escapes control characters this way.
                out += static_cast<char>(code & 0xff);
                break;
            }
            default:
                return fail("unknown escape");
            }
        }
        return fail("unterminated string");
    }

    bool parseNumber(double &out)
    {
        skipSpace();
        const char *begin = text.c_str() + pos;
        char *end = nullptr;
        out = std::strtod(begin, &end);
        if (end == begin)
            return fail("expected a number");
        pos += static_cast<size_t>(end - begin);
        return true;
    }
};

} // namespace

bool
parseTraceLine(const std::string &line, TraceEvent &event,
               std::string &error)
{
    Parser p(line);
    std::map<std::string, std::string> strings;
    std::map<std::string, double> numbers;

    if (!p.expect('{')) {
        error = p.error;
        return false;
    }
    p.skipSpace();
    if (p.pos < p.text.size() && p.text[p.pos] == '}') {
        error = "empty object";
        return false;
    }
    for (;;) {
        std::string key;
        if (!p.parseString(key) || !p.expect(':')) {
            error = p.error;
            return false;
        }
        p.skipSpace();
        if (p.pos < p.text.size() && p.text[p.pos] == '"') {
            std::string value;
            if (!p.parseString(value)) {
                error = p.error;
                return false;
            }
            strings[key] = value;
        } else if (p.text.compare(p.pos, 4, "null") == 0) {
            p.pos += 4;
            numbers[key] = 0.0;
        } else {
            double value = 0.0;
            if (!p.parseNumber(value)) {
                error = p.error;
                return false;
            }
            numbers[key] = value;
        }
        p.skipSpace();
        if (p.pos < p.text.size() && p.text[p.pos] == ',') {
            ++p.pos;
            continue;
        }
        break;
    }
    if (!p.expect('}')) {
        error = p.error;
        return false;
    }

    auto str = [&](const char *key) {
        auto it = strings.find(key);
        return it == strings.end() ? std::string() : it->second;
    };
    auto num = [&](const char *key) {
        auto it = numbers.find(key);
        return it == numbers.end() ? 0.0 : it->second;
    };
    auto u64 = [&](const char *key) {
        return static_cast<uint64_t>(num(key));
    };

    std::string type = str("type");
    if (type == "interval") {
        event.kind = EventKind::Interval;
    } else if (type == "decision") {
        event.kind = EventKind::Decision;
    } else if (type == "reconfig") {
        event.kind = EventKind::Reconfig;
    } else if (type == "clock") {
        event.kind = EventKind::ClockChange;
    } else if (type == "cell") {
        event.kind = EventKind::Cell;
    } else if (type == "rep") {
        event.kind = EventKind::Representative;
    } else if (type == "phase") {
        event.kind = EventKind::Phase;
    } else {
        error = "unrecognized record type '" + type + "'";
        return false;
    }

    event.lane = str("lane");
    event.app = str("app");
    event.config = str("config");
    event.interval = u64("interval");
    event.retired = u64("retired");
    event.cycles = u64("cycles");
    event.start_ns = num("start_ns");
    event.duration_ns = num("duration_ns");
    event.ipc = num("ipc");
    event.tpi_ns = num("tpi_ns");
    event.ewma_tpi_ns =
        numbers.count("ewma_tpi_ns") ? num("ewma_tpi_ns") : -1.0;
    event.mem_stall_ns = num("mem_stall_ns");
    event.decision = str("decision");
    event.candidate = static_cast<int>(num("candidate"));
    event.chosen = static_cast<int>(num("chosen"));
    event.confidence = static_cast<int>(num("confidence"));
    event.ewma_home_tpi_ns =
        numbers.count("ewma_home_tpi_ns") ? num("ewma_home_tpi_ns") : -1.0;
    event.ewma_candidate_tpi_ns = numbers.count("ewma_candidate_tpi_ns")
                                      ? num("ewma_candidate_tpi_ns")
                                      : -1.0;
    event.cluster = numbers.count("cluster")
                        ? static_cast<int>(num("cluster"))
                        : -1;
    event.weight = u64("weight");
    event.warmup = u64("warmup");
    event.from_config = static_cast<int>(num("from"));
    event.to_config = static_cast<int>(num("to"));
    event.drain_cycles = u64("drain_cycles");
    event.penalty_ns = num("penalty_ns");
    event.ghz_before = num("ghz_before");
    event.ghz_after = num("ghz_after");
    return true;
}

bool
readTraceJsonl(std::istream &is, DecisionTrace &out, std::string &error)
{
    std::string line;
    size_t line_no = 0;
    while (std::getline(is, line)) {
        ++line_no;
        if (line.find_first_not_of(" \t\r") == std::string::npos)
            continue;
        TraceEvent event;
        std::string line_error;
        if (!parseTraceLine(line, event, line_error)) {
            error = "line " + std::to_string(line_no) + ": " + line_error;
            return false;
        }
        out.add(std::move(event));
    }
    return true;
}

} // namespace cap::obs
