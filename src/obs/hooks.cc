#include "hooks.h"

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>

#include "util/status.h"

namespace cap::obs {

namespace {

/** Process-global sink state armed by initGlobalFromEnv(). */
struct GlobalSession
{
    bool armed = false;
    std::string trace_path;
    std::string metrics_path;
    std::string host_profile_path;
    DecisionTrace trace;
    CounterRegistry registry;
    std::unique_ptr<SpanProfiler> profiler;
    /** Owns the JSONL sink when CAPSIM_PROGRESS names a file. */
    std::unique_ptr<std::ofstream> progress_file;
    std::unique_ptr<ProgressMeter> progress;
};

GlobalSession &
session()
{
    static GlobalSession instance;
    return instance;
}

void
writeFileOrWarn(const std::string &path,
                const std::function<void(std::ostream &)> &writer)
{
    std::ofstream file(path);
    if (!file) {
        warn("obs: cannot write '%s'", path.c_str());
        return;
    }
    writer(file);
}

} // namespace

Hooks
effectiveHooks(const Hooks &hooks)
{
    return hooks.any() ? hooks : globalHooks();
}

Hooks
globalHooks()
{
    GlobalSession &s = session();
    Hooks hooks;
    if (!s.trace_path.empty())
        hooks.trace = &s.trace;
    if (!s.metrics_path.empty())
        hooks.registry = &s.registry;
    hooks.profiler = s.profiler.get();
    hooks.progress = s.progress.get();
    return hooks;
}

void
initGlobalFromEnv()
{
    GlobalSession &s = session();
    if (s.armed)
        return;
    s.armed = true;
    if (const char *path = std::getenv("CAPSIM_TRACE"))
        s.trace_path = path;
    if (const char *path = std::getenv("CAPSIM_METRICS"))
        s.metrics_path = path;
    if (const char *path = std::getenv("CAPSIM_HOST_PROFILE")) {
        s.host_profile_path = path;
        s.profiler = std::make_unique<SpanProfiler>();
        s.profiler->arm();
    }
    if (const char *spec = std::getenv("CAPSIM_PROGRESS")) {
        if (std::strcmp(spec, "1") == 0 ||
            std::strcmp(spec, "stderr") == 0) {
            s.progress = std::make_unique<ProgressMeter>(
                std::cerr, /*jsonl=*/false);
        } else if (*spec != '\0') {
            s.progress_file =
                std::make_unique<std::ofstream>(spec, std::ios::app);
            if (*s.progress_file) {
                s.progress = std::make_unique<ProgressMeter>(
                    *s.progress_file, /*jsonl=*/true);
            } else {
                warn("obs: cannot write CAPSIM_PROGRESS '%s'", spec);
                s.progress_file.reset();
            }
        }
    }
    if (!s.trace_path.empty() || !s.metrics_path.empty() ||
        !s.host_profile_path.empty())
        std::atexit(flushGlobal);
}

void
flushGlobal()
{
    GlobalSession &s = session();
    if (!s.trace_path.empty()) {
        writeFileOrWarn(s.trace_path, [&](std::ostream &os) {
            s.trace.writeJsonl(os);
        });
        writeFileOrWarn(s.trace_path + ".chrome.json",
                        [&](std::ostream &os) {
                            s.trace.writeChromeTrace(os);
                        });
    }
    if (!s.metrics_path.empty()) {
        writeFileOrWarn(s.metrics_path, [&](std::ostream &os) {
            os << "{\n";
            s.registry.renderJsonFields(os, 2);
            os << "\n}\n";
        });
    }
    if (!s.host_profile_path.empty() && s.profiler) {
        // No disarm: flushGlobal may run mid-process (benches flush
        // between phases); emission only reads completed records.
        writeFileOrWarn(s.host_profile_path, [&](std::ostream &os) {
            s.profiler->writeChromeTrace(os);
        });
        s.profiler->writeStageTable(std::cerr);
    }
}

} // namespace cap::obs
