/**
 * @file
 * Extension bench: the two-level ("on-deck + backup") queue of paper
 * Section 4.2 versus plain complexity-adaptive queues.
 *
 * The backup organization reuses the disabled elements as waiting
 * storage: it clocks like its on-deck section but keeps the lookahead
 * of the whole window, at the cost of transfer bubbles on dependence
 * edges that cross the sections.
 */

#include <iostream>

#include "bench_common.h"
#include "core/adaptive_iq.h"
#include "core/backup_queue.h"
#include "trace/workloads.h"

int
main()
{
    using namespace cap;
    using namespace cap::bench;

    banner("Extension: backup (two-level) instruction queue "
           "(Section 4.2)",
           "latency-tolerant codes recover most large-window IPC at a "
           "small-window clock; bypass-sensitive codes prefer the plain "
           "adaptive queue -- 'a backup strategy may allow more "
           "efficient silicon usage and higher IPC'");

    core::AdaptiveIqModel plain;
    core::BackupQueueModel backup;
    uint64_t instrs = iqInstrs();
    std::cout << "instructions per run: " << instrs << "\n\n";

    TableWriter table("TPI (ns): plain queues vs two-level organizations");
    table.setHeader({"app", "plain_16", "plain_64", "plain_128",
                     "2lvl_16+48", "2lvl_16+112", "2lvl_32+96", "best"});

    auto two_level = [&](const trace::AppProfile &app, int ondeck,
                         int backup_entries) {
        ooo::TwoLevelParams params;
        params.ondeck_entries = ondeck;
        params.backup_entries = backup_entries;
        return backup.evaluate(app, params, instrs).tpi_ns;
    };

    for (const trace::AppProfile &app : trace::iqStudyApps()) {
        double p16 = plain.evaluate(app, 16, instrs).tpi_ns;
        double p64 = plain.evaluate(app, 64, instrs).tpi_ns;
        double p128 = plain.evaluate(app, 128, instrs).tpi_ns;
        double b48 = two_level(app, 16, 48);
        double b112 = two_level(app, 16, 112);
        double b96 = two_level(app, 32, 96);

        const char *labels[] = {"plain16", "plain64",    "plain128",
                                "16+48",   "16+112", "32+96"};
        double values[] = {p16, p64, p128, b48, b112, b96};
        int best = 0;
        for (int i = 1; i < 6; ++i) {
            if (values[i] < values[best])
                best = i;
        }
        table.addRow({Cell(app.name), Cell(p16, 3), Cell(p64, 3),
                      Cell(p128, 3), Cell(b48, 3), Cell(b112, 3),
                      Cell(b96, 3), Cell(labels[best])});
    }
    emit(table);
    return 0;
}
