/**
 * @file
 * Branch predictors and synthetic branch streams.
 *
 * Branch predictor tables are another RAM structure the paper marks
 * as a complexity-adaptation candidate (Section 5.4): bigger tables
 * reduce aliasing but lengthen the lookup.  CAPsim provides the two
 * classic table predictors of the era (bimodal and gshare) plus a
 * deterministic synthetic branch stream whose predictability is
 * controlled per application.
 */

#ifndef CAPSIM_OOO_BRANCH_PREDICTOR_H
#define CAPSIM_OOO_BRANCH_PREDICTOR_H

#include <cstdint>
#include <vector>

#include "util/rng.h"
#include "util/units.h"

namespace cap::ooo {

/** One dynamic conditional branch. */
struct BranchRecord
{
    Addr pc = 0;
    bool taken = false;
};

/** Predictor accuracy counters. */
struct PredictorStats
{
    uint64_t branches = 0;
    uint64_t mispredictions = 0;

    double mispredictRatio() const
    {
        return branches ? static_cast<double>(mispredictions) /
                          static_cast<double>(branches)
                        : 0.0;
    }
};

/** Common predictor interface. */
class BranchPredictor
{
  public:
    virtual ~BranchPredictor() = default;

    /** Predict, update, and record accuracy for one branch. */
    bool predictAndUpdate(const BranchRecord &branch);

    const PredictorStats &stats() const { return stats_; }
    void resetStats() { stats_ = PredictorStats(); }

  protected:
    virtual bool predict(Addr pc) = 0;
    virtual void update(Addr pc, bool taken) = 0;

  private:
    PredictorStats stats_;
};

/** Table of 2-bit saturating counters indexed by PC. */
class BimodalPredictor : public BranchPredictor
{
  public:
    /** @param entries Counter-table entries (power of two). */
    explicit BimodalPredictor(int entries);

    int entries() const { return static_cast<int>(table_.size()); }

  protected:
    bool predict(Addr pc) override;
    void update(Addr pc, bool taken) override;

  private:
    size_t indexOf(Addr pc) const;
    std::vector<uint8_t> table_;
};

/** Global-history-xor-PC indexed table of 2-bit counters. */
class GsharePredictor : public BranchPredictor
{
  public:
    /**
     * @param entries Counter-table entries (power of two).
     * @param history_bits Global history length.
     */
    GsharePredictor(int entries, int history_bits);

    int entries() const { return static_cast<int>(table_.size()); }

  protected:
    bool predict(Addr pc) override;
    void update(Addr pc, bool taken) override;

  private:
    size_t indexOf(Addr pc) const;
    std::vector<uint8_t> table_;
    uint64_t history_ = 0;
    uint64_t history_mask_;
};

/**
 * Character of an application's conditional branches.  A fraction of
 * the static branches is strongly biased (predictable with any
 * table); the rest follow a periodic taken-pattern with noise, so
 * accuracy depends on whether the table can keep the working set of
 * static branches apart (aliasing).
 */
struct BranchBehavior
{
    /** Static conditional branch sites. */
    int static_branches = 512;
    /** Fraction of sites that are strongly biased. */
    double biased_fraction = 0.7;
    /** Probability a biased site's branch goes against its bias. */
    double bias_noise = 0.03;
    /** Pattern period of the unbiased sites. */
    int pattern_period = 4;
    /** Probability an unbiased branch deviates from its pattern. */
    double pattern_noise = 0.10;
};

/** Deterministic generator of an application's branch stream. */
class BranchStream
{
  public:
    BranchStream(const BranchBehavior &behavior, uint64_t seed);

    BranchRecord next();

  private:
    BranchBehavior behavior_;
    Rng rng_;
    /** Per-site state: bias direction or pattern phase. */
    std::vector<uint8_t> site_bias_;
    std::vector<uint32_t> site_phase_;
};

} // namespace cap::ooo

#endif // CAPSIM_OOO_BRANCH_PREDICTOR_H
