/**
 * @file
 * Differential tests: independently-written reference models checked
 * against the production simulators on randomized workloads.
 */

#include <algorithm>
#include <list>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "cache/exclusive_hierarchy.h"
#include "trace/record.h"
#include "util/rng.h"

namespace cap::cache {
namespace {

/**
 * Reference implementation of the movable-boundary exclusive
 * hierarchy, written with a deliberately different structure: per-set
 * MRU-ordered lists per level instead of timestamped way arrays.
 *
 * Semantics mirrored:
 *  - fixed index/tag mapping over the whole pool;
 *  - L1 holds at most l1_ways blocks per set, L2 the rest;
 *  - L1 hit: move to L1 MRU;
 *  - L2 hit: promote to L1 MRU; if L1 was full, demote the L1 LRU
 *    block to the L2 slot the promoted block vacated (recency kept);
 *  - miss: fill at L1 MRU; demote the L1 LRU victim to L2 (recency
 *    kept), evicting the L2 LRU when L2 is full.
 *
 * The reference tracks a global recency stamp per block so that
 * "demote keeps recency" can be reproduced: L2 victims are chosen by
 * smallest stamp, and a block demoted from L1 carries its stamp.
 */
class ReferenceHierarchy
{
  public:
    ReferenceHierarchy(const HierarchyGeometry &geometry, int l1_increments)
        : geometry_(geometry), sets_(geometry.sets()),
          l1_ways_(geometry.l1Ways(l1_increments))
    {
    }

    void setBoundary(int l1_increments)
    {
        // Re-label only: blocks keep their level membership by recency
        // re-partitioning at the next access to their set.  To mirror
        // the production model (which partitions by *way position*),
        // we re-partition each set eagerly: the most recent blocks
        // belong to L1.
        //
        // NOTE: the production model re-labels by physical way, not by
        // recency, so after a boundary move the two models may
        // disagree on *levels* until the set is touched again.  The
        // differential outcome check therefore only runs with a fixed
        // boundary; the invariant checks run across moves.
        l1_ways_ = geometry_.l1Ways(l1_increments);
    }

    AccessOutcome access(const trace::TraceRecord &record)
    {
        ++stamp_;
        uint64_t index = geometry_.setIndex(record.addr);
        uint64_t tag = geometry_.tag(record.addr);
        Set &set = sets_[index];

        auto in_l1 = std::find_if(set.l1.begin(), set.l1.end(),
                                  [&](const Block &b) {
                                      return b.tag == tag;
                                  });
        if (in_l1 != set.l1.end()) {
            in_l1->stamp = stamp_;
            return AccessOutcome::L1Hit;
        }
        auto in_l2 = std::find_if(set.l2.begin(), set.l2.end(),
                                  [&](const Block &b) {
                                      return b.tag == tag;
                                  });
        if (in_l2 != set.l2.end()) {
            Block promoted = *in_l2;
            set.l2.erase(in_l2);
            promoted.stamp = stamp_;
            if (static_cast<int>(set.l1.size()) >= l1_ways_)
                demoteL1Lru(set);
            set.l1.push_back(promoted);
            return AccessOutcome::L2Hit;
        }
        // Miss: fill into L1.
        if (static_cast<int>(set.l1.size()) >= l1_ways_) {
            demoteL1Lru(set);
            int l2_capacity =
                geometry_.totalWays() - l1_ways_;
            if (static_cast<int>(set.l2.size()) > l2_capacity)
                evictL2Lru(set);
        }
        set.l1.push_back({tag, stamp_});
        return AccessOutcome::Miss;
    }

  private:
    struct Block
    {
        uint64_t tag;
        uint64_t stamp;
    };

    struct Set
    {
        std::vector<Block> l1;
        std::vector<Block> l2;
    };

    void demoteL1Lru(Set &set)
    {
        auto lru = std::min_element(set.l1.begin(), set.l1.end(),
                                    [](const Block &a, const Block &b) {
                                        return a.stamp < b.stamp;
                                    });
        set.l2.push_back(*lru);
        set.l1.erase(lru);
    }

    void evictL2Lru(Set &set)
    {
        auto lru = std::min_element(set.l2.begin(), set.l2.end(),
                                    [](const Block &a, const Block &b) {
                                        return a.stamp < b.stamp;
                                    });
        set.l2.erase(lru);
    }

    HierarchyGeometry geometry_;
    std::vector<Set> sets_;
    int l1_ways_;
    uint64_t stamp_ = 0;
};

class DifferentialTest : public testing::TestWithParam<int>
{
};

TEST_P(DifferentialTest, OutcomesMatchReferenceModel)
{
    HierarchyGeometry geometry;
    int boundary = GetParam();
    ExclusiveHierarchy production(geometry, boundary);
    ReferenceHierarchy reference(geometry, boundary);

    Rng rng(4242 + static_cast<uint64_t>(boundary));
    for (int i = 0; i < 60000; ++i) {
        // Mixture of hot region and wide scatter to exercise all
        // paths (L1 hits, swaps, demotions, L2 evictions).
        Addr addr = rng.chance(0.7) ? rng.below(kib(24))
                                    : rng.below(kib(512));
        trace::TraceRecord record{addr, rng.chance(0.3)};
        AccessOutcome got = production.access(record);
        AccessOutcome want = reference.access(record);
        ASSERT_EQ(static_cast<int>(got), static_cast<int>(want))
            << "ref " << i << " addr " << addr;
    }
    EXPECT_TRUE(production.auditExclusion());
}

INSTANTIATE_TEST_SUITE_P(Boundaries, DifferentialTest,
                         testing::Values(1, 2, 3, 5, 8, 12, 15));

TEST(DifferentialStatsTest, MissCountsMatchOverLongRun)
{
    HierarchyGeometry geometry;
    ExclusiveHierarchy production(geometry, 4);
    ReferenceHierarchy reference(geometry, 4);
    Rng rng(99);
    uint64_t ref_l1 = 0, ref_l2 = 0, ref_miss = 0;
    for (int i = 0; i < 80000; ++i) {
        trace::TraceRecord record{rng.below(kib(300)), false};
        production.access(record);
        switch (reference.access(record)) {
          case AccessOutcome::L1Hit: ++ref_l1; break;
          case AccessOutcome::L2Hit: ++ref_l2; break;
          case AccessOutcome::Miss:  ++ref_miss; break;
        }
    }
    EXPECT_EQ(production.stats().l1_hits, ref_l1);
    EXPECT_EQ(production.stats().l2_hits, ref_l2);
    EXPECT_EQ(production.stats().misses, ref_miss);
}

} // namespace
} // namespace cap::cache
