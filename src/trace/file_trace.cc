#include "file_trace.h"

#include <cctype>
#include <cinttypes>
#include <cstring>

#include "util/status.h"

namespace cap::trace {

FileTraceSource::FileTraceSource(const std::string &path) : path_(path)
{
    file_.reset(std::fopen(path.c_str(), "r"));
    if (!file_)
        fatal("cannot open trace file '%s'", path.c_str());
}

bool
FileTraceSource::next(TraceRecord &record)
{
    char line[256];
    while (std::fgets(line, sizeof(line), file_.get())) {
        ++line_;
        const char *p = line;
        while (*p == ' ' || *p == '\t')
            ++p;
        if (*p == '\0' || *p == '\n' || *p == '#')
            continue;

        unsigned type = 0;
        uint64_t addr = 0;
        if (std::sscanf(p, "%u %" SCNx64, &type, &addr) != 2) {
            warn("%s:%llu: malformed trace record '%s' (skipped)",
                 path_.c_str(), static_cast<unsigned long long>(line_), p);
            ++skipped_;
            continue;
        }
        if (type == 2) {
            // Instruction fetch: not a D-cache reference.
            ++skipped_;
            continue;
        }
        if (type > 2) {
            warn("%s:%llu: unknown record type %u (skipped)",
                 path_.c_str(), static_cast<unsigned long long>(line_),
                 type);
            ++skipped_;
            continue;
        }
        record.addr = addr;
        record.is_write = type == 1;
        ++produced_;
        return true;
    }
    return false;
}

uint64_t
FileTraceSource::nextBatch(TraceRecord *out, uint64_t max)
{
    // Line parsing dominates; the win here is devirtualizing the
    // per-record call for the consumer's inner loop.
    uint64_t n = 0;
    while (n < max && FileTraceSource::next(out[n]))
        ++n;
    return n;
}

FileTraceSource::Cursor
FileTraceSource::saveCursor() const
{
    Cursor cursor;
    cursor.offset = std::ftell(file_.get());
    if (cursor.offset < 0)
        fatal("cannot tell position of trace file '%s'", path_.c_str());
    cursor.line = line_;
    cursor.produced = produced_;
    cursor.skipped = skipped_;
    return cursor;
}

void
FileTraceSource::restoreCursor(const Cursor &cursor)
{
    if (std::fseek(file_.get(), static_cast<long>(cursor.offset),
                   SEEK_SET) != 0)
        fatal("cannot seek trace file '%s'", path_.c_str());
    line_ = cursor.line;
    produced_ = cursor.produced;
    skipped_ = cursor.skipped;
}

uint64_t
writeTraceFile(const std::string &path, TraceSource &source, uint64_t limit)
{
    capAssert(limit > 0, "refusing to write an empty trace");
    std::FILE *out = std::fopen(path.c_str(), "w");
    if (!out)
        fatal("cannot create trace file '%s'", path.c_str());

    std::fprintf(out, "# CAPsim trace: <type> <hex-address>; "
                      "0 = load, 1 = store\n");
    TraceRecord record;
    uint64_t written = 0;
    while (written < limit && source.next(record)) {
        std::fprintf(out, "%d %" PRIx64 "\n", record.is_write ? 1 : 0,
                     record.addr);
        ++written;
    }
    std::fclose(out);
    return written;
}

} // namespace cap::trace
