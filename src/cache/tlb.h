/**
 * @file
 * Fully-associative translation lookaside buffer simulator.
 *
 * TLBs are among the "other critical parts of the machine" the paper
 * proposes making complexity-adaptive (Section 5.4): a larger CAM
 * covers more pages but lengthens the match delay.  The simulator
 * supports live resizing; shrinking evicts the LRU tail (the cleanup
 * operation of paper Section 4.2).
 */

#ifndef CAPSIM_CACHE_TLB_H
#define CAPSIM_CACHE_TLB_H

#include <cstdint>
#include <list>
#include <unordered_map>

#include "util/units.h"

namespace cap::cache {

/** TLB event counts. */
struct TlbStats
{
    uint64_t accesses = 0;
    uint64_t misses = 0;

    double missRatio() const
    {
        return accesses ? static_cast<double>(misses) /
                          static_cast<double>(accesses)
                        : 0.0;
    }
};

/** Fully-associative, LRU-replaced TLB over page numbers. */
class Tlb
{
  public:
    /**
     * @param entries Number of page translations held.
     * @param page_bytes Page size (paper-era Alpha default: 8 KB).
     */
    explicit Tlb(int entries, uint64_t page_bytes = 8192);

    int entries() const { return entries_; }
    uint64_t pageBytes() const { return page_bytes_; }

    /** Translate the page containing @p addr; true on a hit. */
    bool access(Addr addr);

    /** Translate a raw page number; true on a hit. */
    bool accessPage(uint64_t page);

    /**
     * Resize the TLB.  Growing keeps all translations; shrinking
     * evicts least-recently-used translations until the new capacity
     * fits (the disabled elements' cleanup).
     */
    void resize(int entries);

    const TlbStats &stats() const { return stats_; }
    void resetStats() { stats_ = TlbStats(); }

    /** Number of translations currently held (test support). */
    int occupancy() const { return static_cast<int>(lru_.size()); }

  private:
    int entries_;
    uint64_t page_bytes_;
    /** MRU-first list of resident page numbers. */
    std::list<uint64_t> lru_;
    /** page -> list position. */
    std::unordered_map<uint64_t, std::list<uint64_t>::iterator> map_;
    TlbStats stats_;
};

} // namespace cap::cache

#endif // CAPSIM_CACHE_TLB_H
