/**
 * @file
 * Two-level ("on-deck + backup") instruction queue -- the silicon-
 * efficiency alternative the paper sketches in Section 4.2.
 *
 * Instead of disabling the unused portion of a large queue, the
 * disabled elements serve as a *backup* section: instructions waiting
 * for operands or long-latency producers sit there, while a small
 * "on-deck" section holds instructions close to issuing.  Only the
 * on-deck section participates in the atomic wakeup/select, so the
 * cycle time is that of a small queue, while the backup preserves the
 * lookahead of a large one.
 *
 * Modelled mechanics:
 *  - dispatch steers an instruction into the on-deck section when it
 *    has room, otherwise into the backup section (program order is
 *    tracked across both);
 *  - the backup section has no wakeup CAM: it cannot observe bypassed
 *    results, so a backup instruction becomes transfer-eligible only
 *    once its producers have *completed*; each cycle up to
 *    promote_width eligible instructions move to the on-deck section
 *    if it has room, and the transfer takes transfer_latency cycles
 *    before the instruction is visible to wakeup;
 *  - wakeup/select (oldest-first, issue_width per cycle) runs over the
 *    on-deck section only;
 *  - entries are reclaimed in program order once issued (RUU
 *    discipline, shared with CoreModel) across both sections.
 *
 * The result sits between the small and large conventional queues:
 * distant ILP parked in the backup returns at a small-queue clock, at
 * the price of transfer bubbles on the dependence edges that cross
 * the sections.
 */

#ifndef CAPSIM_OOO_TWO_LEVEL_QUEUE_H
#define CAPSIM_OOO_TWO_LEVEL_QUEUE_H

#include <cstdint>
#include <deque>

#include "ooo/core_model.h"
#include "ooo/stream.h"
#include "util/units.h"

namespace cap::ooo {

/** Parameters of the two-level queue machine. */
struct TwoLevelParams
{
    /** On-deck entries (set the wakeup/select cycle time). */
    int ondeck_entries = 16;
    /** Backup entries (waiting storage; off the critical path). */
    int backup_entries = 112;
    /** Backup -> on-deck transfers per cycle. */
    int promote_width = 4;
    /** Cycles a transfer takes before wakeup can see the entry. */
    int transfer_latency = 2;
    int dispatch_width = 8;
    int issue_width = 8;
};

/** Core model with the two-level queue. */
class TwoLevelCoreModel
{
  public:
    TwoLevelCoreModel(InstructionStream &stream,
                      const TwoLevelParams &params);

    /** Run until @p instructions more instructions have issued. */
    RunResult step(uint64_t instructions);

    uint64_t issuedInstructions() const { return issued_; }
    Cycles cycleCount() const { return cycle_; }

    /** Instructions currently in the on-deck section. */
    int ondeckOccupancy() const;

    /** Instructions currently in the backup section. */
    int backupOccupancy() const;

  private:
    struct Entry
    {
        uint64_t index;
        Cycles ready_at;
        uint32_t latency;
        uint64_t src1;
        uint64_t src2;
        bool issued;
        bool ondeck;
        /** Cycle at which the entry became eligible to issue
         *  (promotion completes); on-deck wakeup ignores it before
         *  then. */
        Cycles eligible_at;
    };

    void tick();
    Cycles completionOf(uint64_t index) const;
    void recordCompletion(uint64_t index, Cycles at);

    InstructionStream &stream_;
    TwoLevelParams params_;
    /** All in-flight entries in program order (both sections). */
    std::deque<Entry> window_;
    std::vector<Cycles> completion_;
    int ondeck_count_ = 0;
    uint64_t dispatched_ = 0;
    uint64_t issued_ = 0;
    Cycles cycle_ = 0;
};

} // namespace cap::ooo

#endif // CAPSIM_OOO_TWO_LEVEL_QUEUE_H
