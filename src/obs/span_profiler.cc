#include "obs/span_profiler.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <iomanip>
#include <map>
#include <sstream>

#include "util/parallel.h"
#include "util/table.h"

namespace cap::obs {

namespace {

std::atomic<SpanProfiler *> g_active{nullptr};

uint64_t steadyNowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace

SpanProfiler::SpanProfiler() : lanes_(1) {}

SpanProfiler::~SpanProfiler()
{
    SpanProfiler *self = this;
    g_active.compare_exchange_strong(self, nullptr,
                                     std::memory_order_acq_rel);
}

void SpanProfiler::arm()
{
    if (armed_)
        return;
    epoch_ns_ = steadyNowNs();
    armed_ = true;
    g_active.store(this, std::memory_order_release);
}

void SpanProfiler::disarm()
{
    if (!armed_)
        return;
    armed_ = false;
    SpanProfiler *self = this;
    g_active.compare_exchange_strong(self, nullptr,
                                     std::memory_order_acq_rel);
}

SpanProfiler *SpanProfiler::active()
{
    return g_active.load(std::memory_order_relaxed);
}

uint64_t SpanProfiler::nowNs() const
{
    if (epoch_ns_ == 0)
        return 0;
    return steadyNowNs() - epoch_ns_;
}

SpanProfiler::Lane &SpanProfiler::laneRef(int i)
{
    if (i < 0)
        i = 0;
    if (i >= kMaxLanes)
        i = kMaxLanes - 1;
    if (static_cast<size_t>(i) >= lanes_.size())
        lanes_.resize(static_cast<size_t>(i) + 1);
    return lanes_[static_cast<size_t>(i)];
}

void SpanProfiler::beginSpan(int lane, const char *name)
{
    Lane &l = laneRef(lane);
    l.open.push_back(OpenFrame{name, nowNs(), 0});
}

void SpanProfiler::endSpan(int lane)
{
    Lane &l = laneRef(lane);
    if (l.open.empty())
        return;
    const OpenFrame frame = l.open.back();
    l.open.pop_back();
    const uint64_t end_ns = nowNs();
    const uint64_t dur =
        end_ns > frame.start_ns ? end_ns - frame.start_ns : 0;
    SpanRecord rec;
    rec.name = frame.name;
    rec.depth = static_cast<int>(l.open.size());
    rec.start_ns = frame.start_ns;
    rec.dur_ns = dur;
    rec.self_ns = dur > frame.child_ns ? dur - frame.child_ns : 0;
    l.records.push_back(rec);
    if (!l.open.empty())
        l.open.back().child_ns += dur;
}

const std::vector<SpanRecord> &SpanProfiler::lane(int i) const
{
    static const std::vector<SpanRecord> empty;
    if (i < 0 || static_cast<size_t>(i) >= lanes_.size())
        return empty;
    return lanes_[static_cast<size_t>(i)].records;
}

int SpanProfiler::laneCount() const
{
    int count = 0;
    for (size_t i = 0; i < lanes_.size(); ++i)
        if (!lanes_[i].records.empty())
            count = static_cast<int>(i) + 1;
    return count;
}

size_t SpanProfiler::spanCount() const
{
    size_t n = 0;
    for (const Lane &l : lanes_)
        n += l.records.size();
    return n;
}

std::vector<StageRow> SpanProfiler::stageTable() const
{
    // std::map keys by name so the aggregation order is independent
    // of which lane recorded a stage first.
    std::map<std::string, StageRow> by_name;
    for (const Lane &l : lanes_) {
        for (const SpanRecord &rec : l.records) {
            StageRow &row = by_name[rec.name];
            row.name = rec.name;
            row.calls += 1;
            row.total_s += static_cast<double>(rec.dur_ns) * 1e-9;
            row.self_s += static_cast<double>(rec.self_ns) * 1e-9;
        }
    }
    double self_sum = 0.0;
    for (const auto &[name, row] : by_name)
        self_sum += row.self_s;
    std::vector<StageRow> rows;
    rows.reserve(by_name.size());
    for (auto &[name, row] : by_name) {
        row.share_pct =
            self_sum > 0.0 ? 100.0 * row.self_s / self_sum : 0.0;
        rows.push_back(row);
    }
    std::sort(rows.begin(), rows.end(),
              [](const StageRow &a, const StageRow &b) {
                  if (a.self_s != b.self_s)
                      return a.self_s > b.self_s;
                  return a.name < b.name;
              });
    return rows;
}

void SpanProfiler::writeStageTable(std::ostream &os) const
{
    const std::vector<StageRow> rows = stageTable();
    TableWriter table("host profile -- stage attribution");
    table.setHeader({"stage", "calls", "total_s", "self_s", "share_%"});
    for (const StageRow &row : rows) {
        table.addRow({Cell(row.name), Cell(row.calls), Cell(row.total_s, 6),
                      Cell(row.self_s, 6), Cell(row.share_pct, 1)});
    }
    table.renderAscii(os);
}

void SpanProfiler::writeChromeTrace(std::ostream &os) const
{
    os << "[";
    bool first = true;
    auto emit = [&](const std::string &line) {
        if (!first)
            os << ",";
        os << "\n" << line;
        first = false;
    };
    emit("{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
         "\"args\":{\"name\":\"capsim host\"}}");
    for (size_t i = 0; i < lanes_.size(); ++i) {
        if (lanes_[i].records.empty())
            continue;
        emit("{\"ph\":\"M\",\"pid\":1,\"tid\":" + std::to_string(i) +
             ",\"name\":\"thread_name\",\"args\":{\"name\":\"worker " +
             std::to_string(i) + "\"}}");
    }
    for (size_t i = 0; i < lanes_.size(); ++i) {
        for (const SpanRecord &rec : lanes_[i].records) {
            // trace_event ts/dur are microseconds; keep sub-us
            // resolution with fractional values.
            std::ostringstream line;
            line << "{\"ph\":\"X\",\"pid\":1,\"tid\":" << i
                 << ",\"name\":\"" << rec.name << "\",\"ts\":"
                 << std::fixed << std::setprecision(3)
                 << static_cast<double>(rec.start_ns) * 1e-3
                 << ",\"dur\":" << static_cast<double>(rec.dur_ns) * 1e-3
                 << ",\"args\":{\"depth\":" << rec.depth << "}}";
            emit(line.str());
        }
    }
    os << "\n]\n";
}

ScopedSpan::ScopedSpan(const char *name)
    : profiler_(SpanProfiler::active())
{
    if (profiler_ == nullptr)
        return;
    lane_ = currentWorkerId();
    profiler_->beginSpan(lane_, name);
}

ScopedSpan::~ScopedSpan()
{
    if (profiler_ == nullptr)
        return;
    profiler_->endSpan(lane_);
}

} // namespace cap::obs
