#include "stream.h"

#include <algorithm>

#include "util/status.h"

namespace cap::trace {

namespace {

constexpr Addr kRegionAlignment = mib(1);

std::unique_ptr<Pattern>
makePattern(const PatternSpec &spec, Region region, uint64_t shuffle_seed)
{
    switch (spec.kind) {
      case PatternKind::ZipfResident:
        return std::make_unique<ZipfResident>(region, kBlockBytes,
                                              spec.zipf_s, shuffle_seed);
      case PatternKind::CyclicSweep:
        return std::make_unique<CyclicSweep>(region, kBlockBytes);
      case PatternKind::Stream:
        return std::make_unique<Stream>(region, kBlockBytes,
                                        spec.touches_per_block);
    }
    panic("unknown pattern kind");
}

} // namespace

SyntheticTraceSource::SyntheticTraceSource(const CacheBehavior &behavior,
                                           uint64_t seed, uint64_t limit)
    : write_fraction_(behavior.write_fraction),
      limit_(limit),
      rng_(seed)
{
    Addr next_base = kRegionAlignment;
    Rng shuffle_rng = rng_.split();

    auto build_phase = [&](const std::vector<PatternSpec> &mix,
                           uint64_t length_refs) {
        capAssert(!mix.empty(), "profile has an empty reference mix");
        Phase phase;
        phase.length_refs = length_refs;
        for (const PatternSpec &spec : mix) {
            capAssert(spec.region_bytes >= kBlockBytes,
                      "component region smaller than a block");
            Region region{next_base, spec.region_bytes};
            next_base += divCeil(spec.region_bytes, kRegionAlignment) *
                         kRegionAlignment;
            phase.patterns.push_back(
                makePattern(spec, region, shuffle_rng.next()));
            phase.weights.push_back(spec.weight);
        }
        phases_.push_back(std::move(phase));
    };

    if (behavior.phases.empty()) {
        build_phase(behavior.mix, UINT64_MAX);
    } else {
        for (const CachePhase &phase : behavior.phases) {
            capAssert(phase.length_refs > 0, "zero-length cache phase");
            build_phase(phase.mix, phase.length_refs);
        }
    }
}

SyntheticTraceSource::Cursor
SyntheticTraceSource::saveCursor() const
{
    Cursor cursor;
    cursor.phase = phase_;
    cursor.phase_left = phase_left_;
    cursor.produced = produced_;
    cursor.rng_state = rng_.saveState();
    for (const Phase &phase : phases_) {
        for (const auto &pattern : phase.patterns)
            pattern->saveCursor(cursor.pattern_state);
    }
    return cursor;
}

void
SyntheticTraceSource::restoreCursor(const Cursor &cursor)
{
    capAssert(cursor.phase < phases_.size(),
              "cursor phase index out of range");
    capAssert(cursor.phase_left <=
                  phases_[cursor.phase].length_refs,
              "cursor phase_left exceeds the phase length");
    phase_ = cursor.phase;
    phase_left_ = cursor.phase_left;
    produced_ = cursor.produced;
    rng_.restoreState(cursor.rng_state);
    // Shape check before any pattern reads its words: a cursor from a
    // differently-shaped source must not partially apply.
    std::vector<uint64_t> shape;
    for (const Phase &phase : phases_) {
        for (const auto &pattern : phase.patterns)
            pattern->saveCursor(shape);
    }
    capAssert(shape.size() == cursor.pattern_state.size(),
              "cursor pattern state shape mismatch");
    size_t consumed = 0;
    for (Phase &phase : phases_) {
        for (const auto &pattern : phase.patterns) {
            consumed += pattern->restoreCursor(
                cursor.pattern_state.data() + consumed);
        }
    }
}

bool
SyntheticTraceSource::next(TraceRecord &record)
{
    if (limit_ != 0 && produced_ >= limit_)
        return false;
    // Advance the phase schedule (single-phase profiles never switch).
    if (phase_left_ == 0)
        phase_left_ = phases_[phase_].length_refs;
    Phase &phase = phases_[phase_];
    size_t which =
        phase.patterns.size() == 1 ? 0 : rng_.weighted(phase.weights);
    record.addr = phase.patterns[which]->next(rng_);
    record.is_write = rng_.chance(write_fraction_);
    ++produced_;
    if (--phase_left_ == 0 && phases_.size() > 1)
        phase_ = (phase_ + 1) % phases_.size();
    return true;
}

uint64_t
SyntheticTraceSource::nextBatch(TraceRecord *out, uint64_t max)
{
    if (limit_ != 0) {
        uint64_t left = produced_ >= limit_ ? 0 : limit_ - produced_;
        if (max > left)
            max = left;
    }
    uint64_t n = 0;
    while (n < max) {
        if (phase_left_ == 0)
            phase_left_ = phases_[phase_].length_refs;
        Phase &phase = phases_[phase_];
        uint64_t chunk = std::min(max - n, phase_left_);
        // The Rng call order must match next() exactly (cursors and
        // replay depend on it): single-pattern phases skip the
        // weighted draw.
        if (phase.patterns.size() == 1) {
            Pattern &pattern = *phase.patterns[0];
            for (uint64_t i = 0; i < chunk; ++i, ++n) {
                out[n].addr = pattern.next(rng_);
                out[n].is_write = rng_.chance(write_fraction_);
            }
        } else {
            for (uint64_t i = 0; i < chunk; ++i, ++n) {
                size_t which = rng_.weighted(phase.weights);
                out[n].addr = phase.patterns[which]->next(rng_);
                out[n].is_write = rng_.chance(write_fraction_);
            }
        }
        produced_ += chunk;
        // Like next(), a depleted phase is left at zero and re-armed
        // lazily, so saved cursors are indistinguishable between the
        // batched and single-record paths.
        phase_left_ -= chunk;
        if (phase_left_ == 0 && phases_.size() > 1)
            phase_ = (phase_ + 1) % phases_.size();
    }
    return n;
}

} // namespace cap::trace
