/**
 * @file
 * Shared study runners for the Figure 7-11 benches.
 */

#ifndef CAPSIM_BENCH_STUDY_H
#define CAPSIM_BENCH_STUDY_H

#include "bench_common.h"
#include "core/experiment.h"
#include "trace/workloads.h"

namespace cap::bench {

/** Run the paper's cache study at the bench's configured scale. */
inline core::CacheStudy
paperCacheStudy()
{
    core::AdaptiveCacheModel model;
    return core::runCacheStudy(model, trace::cacheStudyApps(),
                               cacheRefs(), 8, benchJobs());
}

/** Run the paper's instruction-queue study. */
inline core::IqStudy
paperIqStudy()
{
    core::AdaptiveIqModel model;
    return core::runIqStudy(model, trace::iqStudyApps(), iqInstrs(),
                            benchJobs());
}

/** Configuration label like "16KB/4way". */
inline std::string
boundaryLabel(const core::CacheBoundaryTiming &t)
{
    return std::to_string(t.l1_bytes / 1024) + "KB/" +
           std::to_string(t.l1_assoc) + "way";
}

} // namespace cap::bench

#endif // CAPSIM_BENCH_STUDY_H
