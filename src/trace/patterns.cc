#include "patterns.h"

#include <numeric>

#include "util/status.h"

namespace cap::trace {

ZipfResident::ZipfResident(Region region, uint64_t block_bytes, double s,
                           uint64_t shuffle_seed)
    : region_(region), block_bytes_(block_bytes), s_(s)
{
    capAssert(block_bytes > 0, "block size must be positive");
    uint64_t n = region.blocks(block_bytes);
    capAssert(n > 0, "ZipfResident region smaller than one block");
    capAssert(n <= UINT32_MAX, "region too large for shuffle table");
    shuffle_.resize(n);
    std::iota(shuffle_.begin(), shuffle_.end(), 0);
    // Fisher-Yates with a dedicated generator so the spatial layout is
    // a fixed property of the workload, not of trace position.
    Rng shuffle_rng(shuffle_seed);
    for (uint64_t i = n - 1; i > 0; --i) {
        uint64_t j = shuffle_rng.below(i + 1);
        std::swap(shuffle_[i], shuffle_[j]);
    }
}

Addr
ZipfResident::next(Rng &rng)
{
    uint64_t rank = rng.zipf(shuffle_.size(), s_);
    uint64_t block = shuffle_[rank];
    uint64_t offset = rng.below(block_bytes_);
    return region_.base + block * block_bytes_ + offset;
}

CyclicSweep::CyclicSweep(Region region, uint64_t stride_bytes)
    : region_(region), stride_bytes_(stride_bytes)
{
    capAssert(stride_bytes > 0, "sweep stride must be positive");
    capAssert(region.size_bytes >= stride_bytes,
              "sweep region smaller than one stride");
}

Addr
CyclicSweep::next(Rng &rng)
{
    (void)rng;
    Addr addr = region_.base + offset_;
    offset_ += stride_bytes_;
    if (offset_ + stride_bytes_ > region_.size_bytes)
        offset_ = 0;
    return addr;
}

void
CyclicSweep::saveCursor(std::vector<uint64_t> &out) const
{
    out.push_back(offset_);
}

size_t
CyclicSweep::restoreCursor(const uint64_t *words)
{
    capAssert(words[0] < region_.size_bytes,
              "sweep cursor beyond its region");
    offset_ = words[0];
    return 1;
}

Stream::Stream(Region region, uint64_t block_bytes, int touches_per_block)
    : region_(region),
      block_bytes_(block_bytes),
      touches_per_block_(touches_per_block)
{
    capAssert(block_bytes > 0, "block size must be positive");
    capAssert(touches_per_block > 0, "need at least one touch per block");
    capAssert(region.blocks(block_bytes) > 0, "stream region too small");
}

Addr
Stream::next(Rng &rng)
{
    uint64_t offset = rng.below(block_bytes_);
    Addr addr = region_.base + block_index_ * block_bytes_ + offset;
    if (++touches_done_ >= touches_per_block_) {
        touches_done_ = 0;
        if (++block_index_ >= region_.blocks(block_bytes_))
            block_index_ = 0;
    }
    return addr;
}

void
Stream::saveCursor(std::vector<uint64_t> &out) const
{
    out.push_back(block_index_);
    out.push_back(static_cast<uint64_t>(touches_done_));
}

size_t
Stream::restoreCursor(const uint64_t *words)
{
    capAssert(words[0] < region_.blocks(block_bytes_),
              "stream cursor beyond its region");
    capAssert(words[1] < static_cast<uint64_t>(touches_per_block_),
              "stream touch count out of range");
    block_index_ = words[0];
    touches_done_ = static_cast<int>(words[1]);
    return 2;
}

} // namespace cap::trace
