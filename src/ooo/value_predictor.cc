#include "value_predictor.h"

#include "util/status.h"

namespace cap::ooo {

StrideValuePredictor::StrideValuePredictor(int entries)
    : table_(static_cast<size_t>(entries))
{
    capAssert(entries >= 2 && isPowerOfTwo(static_cast<uint64_t>(entries)),
              "table entries must be a power of two");
}

size_t
StrideValuePredictor::indexOf(Addr pc) const
{
    return static_cast<size_t>((pc >> 2) & (table_.size() - 1));
}

bool
StrideValuePredictor::predictAndUpdate(const ValueRecord &record)
{
    ++stats_.lookups;
    Entry &entry = table_[indexOf(record.pc)];

    uint64_t predicted =
        entry.last_value + static_cast<uint64_t>(entry.stride);
    bool confident = entry.confidence >= 2;
    bool correct = predicted == record.value;
    if (confident) {
        ++stats_.predictions;
        if (correct)
            ++stats_.correct;
    }

    // Update: track the new stride; confidence follows correctness of
    // the *stride hypothesis* whether or not it was confident yet.
    int64_t new_stride = static_cast<int64_t>(record.value) -
                         static_cast<int64_t>(entry.last_value);
    if (correct) {
        if (entry.confidence < 3)
            ++entry.confidence;
    } else {
        entry.confidence = new_stride == entry.stride
                               ? entry.confidence
                               : static_cast<uint8_t>(0);
    }
    entry.stride = new_stride;
    entry.last_value = record.value;
    return confident && correct;
}

ValueStream::ValueStream(const ValueBehavior &behavior, uint64_t seed)
    : behavior_(behavior), rng_(seed)
{
    capAssert(behavior.static_sites >= 1, "need value sites");
    size_t n = static_cast<size_t>(behavior.static_sites);
    site_value_.assign(n, 0);
    site_stride_.assign(n, 0);
    site_predictable_.assign(n, 0);
    Rng setup = rng_.split();
    for (size_t site = 0; site < n; ++site) {
        site_predictable_[site] =
            setup.chance(behavior.predictable_fraction) ? 1 : 0;
        site_stride_[site] = setup.range(1, 64) * 8;
        site_value_[site] = setup.next();
    }
}

ValueRecord
ValueStream::next()
{
    uint64_t site =
        rng_.zipf(static_cast<uint64_t>(behavior_.static_sites),
                  behavior_.popularity_s);
    ValueRecord record;
    record.pc = 0x800000 + site * 4;
    if (site_predictable_[site]) {
        site_value_[site] += static_cast<uint64_t>(site_stride_[site]);
    } else {
        site_value_[site] = rng_.next();
    }
    record.value = site_value_[site];
    return record;
}

} // namespace cap::ooo
