/**
 * @file
 * Abstract micro-op supply for the out-of-order core models.
 *
 * Both the synthetic generator (ooo::InstructionStream) and the uop
 * trace-file reader (ooo::UopFileSource) implement this interface, so
 * CoreModel, fastProfile and WindowSweeper are agnostic to where the
 * instruction stream comes from -- mirroring how the cache side feeds
 * either trace::AddressStream or trace::FileTraceSource records into
 * the hierarchy.
 *
 * Contract:
 *  - nextBatch() fills up to @p max ops and returns how many were
 *    produced.  The synthetic generator always produces the full
 *    batch; a file source returns short (eventually 0) at EOF.
 *  - position() is the absolute index of the *next* op the source
 *    will produce, i.e. the number of ops produced so far adjusted
 *    for any cursor seek.  Dependency distances are expressed
 *    relative to this index and are always <= position() (sources
 *    clamp), so instruction 0 never names a negative producer.
 */

#ifndef CAPSIM_OOO_OP_SOURCE_H
#define CAPSIM_OOO_OP_SOURCE_H

#include <cstdint>

#include "uop.h"

namespace cap::ooo {

class OpSource
{
  public:
    virtual ~OpSource() = default;

    /** Produce up to @p max ops into @p out; returns the count (0 at
     *  end of a finite source). */
    virtual uint64_t nextBatch(MicroOp *out, uint64_t max) = 0;

    /** Absolute index of the next op nextBatch() will produce. */
    virtual uint64_t position() const = 0;
};

} // namespace cap::ooo

#endif // CAPSIM_OOO_OP_SOURCE_H
