/**
 * @file
 * Regenerates Figure 12: two snapshots of turb3d's execution showing
 * per-interval TPI for the 64-entry and 128-entry queue
 * configurations.  In snapshot (a) the 64-entry configuration wins
 * consistently over a long period; in (b) the 128-entry configuration
 * wins.  (Our synthetic turb3d phases repeat at a scaled-down period;
 * the snapshots are windows inside one phase of each kind.)
 */

#include <iostream>

#include "bench_common.h"
#include "core/adaptive_iq.h"
#include "trace/workloads.h"
#include "util/stats.h"

namespace {

using namespace cap;
using namespace cap::bench;

void
snapshot(char label, const IntervalSeries &s64, const IntervalSeries &s128,
         size_t first, size_t last, int stride)
{
    TableWriter table(std::string("Figure 12") + label +
                      ": turb3d TPI per 2000-instruction interval (ns)");
    table.setHeader({"interval", "64_entries", "128_entries"});
    for (size_t i = first; i < last && i < s64.size(); i += stride)
        table.addRow({static_cast<int>(i), Cell(s64.at(i), 4),
                      Cell(s128.at(i), 4)});
    emit(table);
    double m64 = s64.meanOver(first, last);
    double m128 = s128.meanOver(first, last);
    std::cout << "window mean: 64-entry " << m64 << " ns, 128-entry "
              << m128 << " ns ("
              << (m64 < m128 ? "64-entry" : "128-entry") << " wins by "
              << 100.0 * std::abs(m64 - m128) / std::max(m64, m128)
              << "%)\n\n";
}

} // namespace

int
main()
{
    banner("Figure 12: intra-application diversity of turb3d",
           "long homogeneous regions: one snapshot where the 64-entry "
           "queue performs ~10% better, another where the 128-entry "
           "queue wins (paper: ~20%; our synthetic phase gives a "
           "smaller but clear gap)");

    core::AdaptiveIqModel model;
    const trace::AppProfile &turb3d = trace::findApp("turb3d");
    // Schedule: A(600k) B(400k) A(500k) B(450k) instructions; 2000-
    // instruction intervals -> A spans [0,300), B spans [300,500), ...
    uint64_t instrs = 1'000'000;
    IntervalSeries s64 = model.intervalSeries(turb3d, 64, instrs);
    IntervalSeries s128 = model.intervalSeries(turb3d, 128, instrs);

    snapshot('a', s64, s128, 60, 260, 10);  // inside phase A
    snapshot('b', s64, s128, 330, 480, 10); // inside phase B
    return 0;
}
