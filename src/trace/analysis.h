/**
 * @file
 * Trace characterization: footprint, write fraction and LRU
 * stack-distance (reuse-distance) analysis.
 *
 * Stack distances give the fully-associative LRU miss ratio at every
 * capacity from a single pass: a reference with stack distance d hits
 * in any LRU cache of at least d blocks.  This is how CAPsim's
 * synthetic profiles were calibrated against the paper's Figure 7
 * shapes, and it lets users characterize their own trace files before
 * running the adaptive-cache experiments.
 */

#ifndef CAPSIM_TRACE_ANALYSIS_H
#define CAPSIM_TRACE_ANALYSIS_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "trace/record.h"

namespace cap::trace {

/** Distances up to this value are counted exactly. */
constexpr uint64_t kExactDistanceLimit = 8192;

/** Result of characterizing a reference stream. */
struct TraceCharacter
{
    uint64_t refs = 0;
    uint64_t writes = 0;
    /** Distinct blocks touched. */
    uint64_t footprint_blocks = 0;
    /** Block granularity used, bytes. */
    uint64_t block_bytes = 0;
    /**
     * exact_counts[d] = references with stack distance d, for
     * d in [1, kExactDistanceLimit].
     */
    std::vector<uint64_t> exact_counts;
    /**
     * Distances above the exact limit, in power-of-two bins:
     * overflow_bins[b] counts distances in [2^b, 2^(b+1)).
     */
    std::vector<uint64_t> overflow_bins;
    /** References to never-before-seen blocks (cold misses). */
    uint64_t cold_refs = 0;

    double writeFraction() const
    {
        return refs ? static_cast<double>(writes) /
                      static_cast<double>(refs)
                    : 0.0;
    }

    /**
     * Fully-associative LRU miss ratio at a capacity of
     * @p capacity_blocks blocks (cold misses included).  Exact up to
     * kExactDistanceLimit; resolved at power-of-two-bin granularity
     * above it (a capacity inside a bin counts the bin as hits).
     */
    double missRatioAtBlocks(uint64_t capacity_blocks) const;

    /** Convenience overload taking a capacity in bytes. */
    double missRatioAtBytes(uint64_t capacity_bytes) const;
};

/**
 * One-pass trace analyzer.  Feed records with add(); read the
 * character at any point.  The stack-distance computation uses a
 * Fenwick tree over access times (O(log n) per reference).
 */
class TraceAnalyzer
{
  public:
    explicit TraceAnalyzer(uint64_t block_bytes = kBlockBytes);

    /** Fold one reference into the analysis. */
    void add(const TraceRecord &record);

    /** Current character (cheap; histograms maintained online). */
    TraceCharacter character() const;

  private:
    /** Count of set positions in fenwick_[1..index]. */
    uint64_t prefixCount(uint64_t index) const;
    void setPosition(uint64_t index);
    void clearPosition(uint64_t index);

    uint64_t block_bytes_;
    /** block -> time of last access (1-based). */
    std::unordered_map<uint64_t, uint64_t> last_access_;
    /** Fenwick tree over time positions that are "live" (the most
     *  recent access of some block). */
    std::vector<uint64_t> fenwick_;
    uint64_t time_ = 0;
    TraceCharacter character_;
};

/** Analyze up to @p limit records from @p source (0 = all). */
TraceCharacter analyzeTrace(TraceSource &source, uint64_t limit,
                            uint64_t block_bytes = kBlockBytes);

} // namespace cap::trace

#endif // CAPSIM_TRACE_ANALYSIS_H
