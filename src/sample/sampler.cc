#include "sampler.h"

#include <algorithm>
#include <cmath>

#include "cache/stack_sim.h"
#include "core/machine.h"
#include "obs/span_profiler.h"
#include "ooo/core_model.h"
#include "ooo/stream.h"
#include "ooo/uop_file.h"
#include "ooo/window_sweep.h"
#include "trace/record.h"
#include "trace/stream.h"
#include "util/status.h"

namespace cap::sample {

namespace {

/** Warmup rounded up to whole intervals. */
uint64_t
warmupIntervals(const SampleParams &params)
{
    return (params.warmup_len + params.interval_len - 1) /
           params.interval_len;
}

/**
 * Stratified-sampling confidence half-width around the weighted-mean
 * TPI.  Each weighted cluster contributes a spread estimate: the
 * conservative two-point variance from its probe,
 * s^2 = (x_probe - x_medoid)^2 / 2, floored by the finite-interval
 * counting noise x_medoid / sqrt(interval_len) (a cluster of
 * identical signatures still carries per-interval measurement noise
 * that a coincident probe cannot resolve).  Cold-prefix intervals are
 * measured exactly and contribute no variance.  Medoids occupy rep
 * slots [0, k) in cluster order, so a probe's medoid measurement is
 * at slot rep.cluster.
 */
double
confidenceHalfWidth(const SamplePlan &plan,
                    const std::vector<double> &rep_tpi, double total_weight,
                    double z)
{
    size_t k = plan.clustering.clusterCount();
    std::vector<double> s2(k);
    for (size_t c = 0; c < k; ++c) {
        double floor_s =
            rep_tpi[c] / std::sqrt(static_cast<double>(plan.interval_len));
        s2[c] = floor_s * floor_s;
    }
    for (size_t r = k; r < plan.reps.size(); ++r) {
        const Representative &rep = plan.reps[r];
        if (!rep.probe)
            continue;
        size_t c = static_cast<size_t>(rep.cluster);
        double d = rep_tpi[r] - rep_tpi[c];
        s2[c] = std::max(s2[c], d * d / 2.0);
    }
    double variance = 0.0;
    for (size_t c = 0; c < k; ++c) {
        double wc =
            static_cast<double>(plan.reps[c].weight) / total_weight;
        variance += wc * wc * s2[c];
    }
    return z * std::sqrt(variance);
}

/**
 * The cache-side replay walk shared by measureConfig() and
 * measureAllConfigs(): visit the representatives in temporal order,
 * jump the source across unsimulated gaps via @p restoreTo, replay
 * warmups and measured intervals through @p access_batch, and notify
 * the machine via @p share (duplicate interval: copy the earlier
 * measurement), @p begin (measured interval starts) and @p done
 * (measured interval ended, with the warmup refs replayed for it).
 * One definition keeps the two paths' reference sequences identical by
 * construction -- which is what the one-pass bit-identity argument
 * rests on.  The source is abstract: @p restoreTo(warm_start) seats it
 * at the start of that interval, so the same walk drives a synthetic
 * generator (cursor restore) or a trace file (offset seek).
 */
template <typename RestoreFn, typename AccessFn, typename ShareFn,
          typename BeginFn, typename DoneFn>
void
walkRepChain(const SamplePlan &plan, const CacheIntervalProfile &profile,
             uint64_t warmup_len, trace::TraceSource &source,
             RestoreFn &&restoreTo, AccessFn &&access_batch,
             ShareFn &&share, BeginFn &&begin, DoneFn &&done)
{
    // Temporal order over the representatives: every interval appears
    // at most once in the plan, so the sort key is unique.
    std::vector<size_t> order(plan.reps.size());
    for (size_t r = 0; r < order.size(); ++r)
        order[r] = r;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return plan.reps[a].interval < plan.reps[b].interval;
    });

    trace::TraceRecord batch[trace::kTraceBatch];
    auto replay = [&](uint64_t count, const char *what) {
        uint64_t left = count;
        while (left > 0) {
            uint64_t n = source.nextBatch(
                batch, std::min<uint64_t>(left, trace::kTraceBatch));
            capAssert(n > 0, "trace exhausted during %s", what);
            access_batch(batch, n);
            left -= n;
        }
    };

    uint64_t position = 0; // absolute ref index the source sits at
    size_t prev_slot = plan.reps.size();
    for (size_t slot : order) {
        size_t start = plan.reps[slot].interval;
        // Two plan entries can name the same interval (a zero-weight
        // medoid of a cluster living entirely inside the cold prefix);
        // measure once and share the result.
        if (prev_slot < plan.reps.size() &&
            plan.reps[prev_slot].interval == start) {
            share(slot, prev_slot);
            continue;
        }
        uint64_t start_ref =
            static_cast<uint64_t>(start) * plan.interval_len;

        // The cold-prefix representatives start the chain at reference
        // zero from the same cold machine the full run sees; every
        // later representative inherits the (stale but mostly
        // resident) state left by its predecessor, so a short recency
        // warmup suffices.
        uint64_t warm =
            (warmup_len + plan.interval_len - 1) / plan.interval_len;
        size_t warm_start = start >= warm ? start - warm : 0;
        uint64_t warm_ref =
            static_cast<uint64_t>(warm_start) * plan.interval_len;
        if (warm_ref > position) {
            // Jump the source forward; the machine keeps its state
            // across the unsimulated gap.
            restoreTo(warm_start);
            position = warm_ref;
        }

        capAssert(position <= start_ref,
                  "representative overlaps the previous measurement");
        uint64_t warm_refs = start_ref - position;
        replay(warm_refs, "warmup");
        begin(slot);
        uint64_t measure = profile.lengthOf(start);
        replay(measure, "measurement");
        position = start_ref + measure;
        done(slot, warm_refs);
        prev_slot = slot;
    }
}

/**
 * Dispatch walkRepChain over the profile's source kind: a file-backed
 * profile (trace_path set) replays the trace file seeking by stored
 * offsets; a synthetic profile regenerates from (app.cache, app.seed).
 */
template <typename AccessFn, typename ShareFn, typename BeginFn,
          typename DoneFn>
void
replayChain(const SamplePlan &plan, const CacheIntervalProfile &profile,
            const trace::AppProfile &app, uint64_t warmup_len,
            AccessFn &&access_batch, ShareFn &&share, BeginFn &&begin,
            DoneFn &&done)
{
    if (!profile.trace_path.empty()) {
        trace::FileTraceSource source(profile.trace_path);
        walkRepChain(
            plan, profile, warmup_len, source,
            [&](size_t warm_start) {
                source.restoreCursor(profile.file_cursors[warm_start]);
            },
            access_batch, share, begin, done);
    } else {
        trace::SyntheticTraceSource source(app.cache, app.seed,
                                           profile.total_refs);
        walkRepChain(
            plan, profile, warmup_len, source,
            [&](size_t warm_start) {
                source.restoreCursor(profile.cursors[warm_start]);
            },
            access_batch, share, begin, done);
    }
}

} // namespace

SamplePlan
planFromSignatures(const std::vector<IntervalSignature> &signatures,
                   uint64_t total_len, uint64_t interval_len,
                   const SampleParams &params, uint64_t cold_prefix_len)
{
    capAssert(!signatures.empty(), "plan needs signatures");
    capAssert(interval_len > 0, "interval length must be positive");
    capAssert(params.clusters > 0, "plan needs at least one cluster");

    SamplePlan plan;
    plan.total_len = total_len;
    plan.interval_len = interval_len;
    plan.num_intervals = signatures.size();
    if (cold_prefix_len > 0) {
        uint64_t span =
            (cold_prefix_len + interval_len - 1) / interval_len;
        plan.prefix_intervals = static_cast<size_t>(
            std::min<uint64_t>(span, plan.num_intervals));
    }
    size_t prefix = plan.prefix_intervals;

    std::vector<IntervalSignature> normalized = signatures;
    normalizeSignatures(normalized);
    size_t k = std::min(params.clusters, signatures.size());
    {
        CAPSIM_SPAN("sample.cluster");
        plan.clustering = kMedoids(normalized, k, params.cluster_seed,
                                   params.max_sweeps);
    }

    auto lengthOf = [&](size_t i) {
        return i + 1 < plan.num_intervals
                   ? interval_len
                   : total_len - interval_len *
                         static_cast<uint64_t>(plan.num_intervals - 1);
    };

    for (size_t c = 0; c < plan.clustering.clusterCount(); ++c) {
        size_t medoid = plan.clustering.medoids[c];
        Representative rep;
        rep.interval = medoid;
        rep.cluster = static_cast<int>(c);
        for (size_t i = prefix; i < plan.num_intervals; ++i) {
            if (plan.clustering.assignment[i] == static_cast<int>(c))
                rep.weight += lengthOf(i);
        }
        if (rep.interval < prefix && rep.weight > 0) {
            // The medoid sits inside the exactly-measured cold prefix;
            // re-anchor it onto the non-prefix member closest to the
            // original medoid (lowest index on ties) so the cluster's
            // weighted estimate comes from a steady-state interval.
            size_t anchor = prefix;
            double best = -1.0;
            for (size_t i = prefix; i < plan.num_intervals; ++i) {
                if (plan.clustering.assignment[i] != static_cast<int>(c))
                    continue;
                double d =
                    signatureDistance(normalized[i], normalized[medoid]);
                if (best < 0.0 || d < best) {
                    best = d;
                    anchor = i;
                }
            }
            rep.interval = anchor;
        }
        plan.reps.push_back(rep);
    }
    if (params.variance_probes) {
        for (size_t c = 0; c < plan.clustering.clusterCount(); ++c) {
            const Representative &medoid_rep = plan.reps[c];
            size_t medoid = medoid_rep.interval;
            if (medoid_rep.weight == 0)
                continue; // cluster lives entirely inside the prefix
            size_t farthest = medoid;
            double far_d = 0.0;
            for (size_t i = prefix; i < plan.num_intervals; ++i) {
                if (plan.clustering.assignment[i] != static_cast<int>(c))
                    continue;
                double d =
                    signatureDistance(normalized[i], normalized[medoid]);
                // Strict > keeps the lowest interval index on ties.
                if (d > far_d) {
                    far_d = d;
                    farthest = i;
                }
            }
            if (farthest == medoid || far_d <= 0.0)
                continue; // nothing to probe: the cluster has no spread
            Representative probe;
            probe.interval = farthest;
            probe.cluster = static_cast<int>(c);
            probe.probe = true;
            plan.reps.push_back(probe);
        }
    }
    for (size_t i = 0; i < prefix; ++i) {
        Representative rep;
        rep.interval = i;
        rep.cluster = plan.clustering.assignment[i];
        rep.weight = lengthOf(i);
        plan.reps.push_back(rep);
    }
    return plan;
}

CacheSampler::CacheSampler(const core::AdaptiveCacheModel &model,
                           const trace::AppProfile &app, uint64_t refs,
                           const SampleParams &params)
    : model_(&model), app_(app), params_(params),
      profile_(profileCacheIntervals(app.cache, app.seed, refs,
                                     params.interval_len)),
      plan_(planFromSignatures(profile_.signatures, refs,
                               params.interval_len, params,
                               params.cold_prefix_len))
{
    // Size the recency warmup from measured temporal locality: the
    // configured warmup_len is a floor, raised to the profile's p90
    // block reuse gap (capped at 8x the floor to bound replay cost).
    uint64_t measured = profile_.reusePercentile(0.9);
    effective_warmup_len_ = std::max(
        params_.warmup_len, std::min(measured, 8 * params_.warmup_len));
}

CacheSampler::CacheSampler(const core::AdaptiveCacheModel &model,
                           const trace::AppProfile &app,
                           const std::string &trace_path,
                           const SampleParams &params)
    : model_(&model), app_(app), params_(params),
      profile_(profileCacheIntervalsFromFile(trace_path,
                                             params.interval_len)),
      plan_(planFromSignatures(profile_.signatures, profile_.total_refs,
                               params.interval_len, params,
                               params.cold_prefix_len))
{
    uint64_t measured = profile_.reusePercentile(0.9);
    effective_warmup_len_ = std::max(
        params_.warmup_len, std::min(measured, 8 * params_.warmup_len));
}

std::vector<CacheRepMeasurement>
CacheSampler::measureConfig(int l1_increments) const
{
    cache::ExclusiveHierarchy hierarchy(model_->geometry(),
                                        l1_increments);
    std::vector<CacheRepMeasurement> meas(plan_.reps.size());
    replayChain(
        plan_, profile_, app_, effective_warmup_len_,
        [&](const trace::TraceRecord *batch, uint64_t n) {
            for (uint64_t i = 0; i < n; ++i)
                hierarchy.access(batch[i]);
        },
        [&](size_t slot, size_t prev) { meas[slot] = meas[prev]; },
        [&](size_t) { hierarchy.resetStats(); },
        [&](size_t slot, uint64_t warm_refs) {
            meas[slot].stats = hierarchy.stats();
            meas[slot].warmup_refs = warm_refs;
        });
    return meas;
}

std::vector<std::vector<CacheRepMeasurement>>
CacheSampler::measureAllConfigs(int max_l1_increments) const
{
    capAssert(max_l1_increments >= 1 &&
              max_l1_increments < model_->geometry().increments,
              "sweep bound out of range");
    size_t n_cfg = static_cast<size_t>(max_l1_increments);
    std::vector<std::vector<CacheRepMeasurement>> meas(
        n_cfg, std::vector<CacheRepMeasurement>(plan_.reps.size()));

    // One stack-distance chain replays the boundary-independent
    // reference sequence; per-boundary measurement stats are the
    // statsFor() deltas around each measured interval.  Cumulative
    // statsFor(k) equals the cumulative stats of measureConfig(k)'s
    // hierarchy at every point of the chain, so every delta -- and
    // hence every CacheRepMeasurement -- is bit-identical.
    cache::StackSimulator stack(model_->geometry());
    std::vector<cache::CacheStats> before(n_cfg);
    replayChain(
        plan_, profile_, app_, effective_warmup_len_,
        [&](const trace::TraceRecord *batch, uint64_t n) {
            stack.accessBatch(batch, n);
        },
        [&](size_t slot, size_t prev) {
            for (size_t k = 0; k < n_cfg; ++k)
                meas[k][slot] = meas[k][prev];
        },
        [&](size_t) {
            for (size_t k = 0; k < n_cfg; ++k)
                before[k] = stack.statsFor(static_cast<int>(k) + 1);
        },
        [&](size_t slot, uint64_t warm_refs) {
            for (size_t k = 0; k < n_cfg; ++k) {
                meas[k][slot].stats =
                    stack.statsFor(static_cast<int>(k) + 1) - before[k];
                meas[k][slot].warmup_refs = warm_refs;
            }
        });
    return meas;
}

SampledCachePerf
CacheSampler::reconstruct(int l1_increments,
                          const std::vector<CacheRepMeasurement> &meas)
    const
{
    capAssert(meas.size() == plan_.reps.size(),
              "measurement count does not match the plan");
    core::CacheBoundaryTiming timing =
        model_->boundaryTiming(l1_increments);
    double rpi = app_.cache.refs_per_instr;

    std::vector<core::CachePerf> rep_perf;
    std::vector<double> rep_tpi;
    for (const CacheRepMeasurement &m : meas) {
        rep_perf.push_back(model_->perfFromStats(m.stats, timing, rpi));
        rep_tpi.push_back(rep_perf.back().tpi_ns);
    }

    // Whole-run estimate: cluster-weighted mean of the medoid
    // intervals' per-reference behaviour (probes carry zero weight).
    double total_w = 0.0;
    double tpi = 0.0;
    double tpi_miss = 0.0;
    double l1_mr = 0.0;
    double global_mr = 0.0;
    for (size_t r = 0; r < plan_.reps.size(); ++r) {
        double w = static_cast<double>(plan_.reps[r].weight);
        if (w <= 0.0)
            continue;
        total_w += w;
        tpi += w * rep_perf[r].tpi_ns;
        tpi_miss += w * rep_perf[r].tpi_miss_ns;
        l1_mr += w * rep_perf[r].l1_miss_ratio;
        global_mr += w * rep_perf[r].global_miss_ratio;
    }
    capAssert(total_w > 0.0, "plan has no weighted representatives");
    tpi /= total_w;
    tpi_miss /= total_w;
    l1_mr /= total_w;
    global_mr /= total_w;

    SampledCachePerf out;
    out.perf.l1_increments = timing.l1_increments;
    out.perf.refs = plan_.total_len;
    out.perf.instructions = static_cast<uint64_t>(
        static_cast<double>(plan_.total_len) / rpi);
    out.perf.l1_miss_ratio = l1_mr;
    out.perf.global_miss_ratio = global_mr;
    out.perf.tpi_ns = tpi;
    out.perf.tpi_miss_ns = tpi_miss;

    double half = confidenceHalfWidth(plan_, rep_tpi, total_w,
                                      params_.confidence_z);
    out.tpi_lo_ns = tpi - half;
    out.tpi_hi_ns = tpi + half;

    for (size_t r = 0; r < plan_.reps.size(); ++r) {
        out.simulated_refs += profile_.lengthOf(plan_.reps[r].interval) +
                              meas[r].warmup_refs;
    }
    return out;
}

SampledCachePerf
CacheSampler::evaluate(int l1_increments) const
{
    return reconstruct(l1_increments, measureConfig(l1_increments));
}

IqSampler::IqSampler(const core::AdaptiveIqModel &model,
                     const trace::AppProfile &app, uint64_t instructions,
                     const SampleParams &params)
    : model_(&model), app_(app), params_(params),
      profile_(profileIlpIntervals(app.ilp, app.seed, instructions,
                                   params.interval_len)),
      plan_(planFromSignatures(profile_.signatures, instructions,
                               params.interval_len, params))
{
}

IqSampler::IqSampler(const core::AdaptiveIqModel &model,
                     const trace::AppProfile &app,
                     const std::string &trace_path,
                     const SampleParams &params)
    : model_(&model), app_(app), params_(params),
      profile_(profileIlpIntervalsFromFile(trace_path,
                                           params.interval_len)),
      plan_(planFromSignatures(profile_.signatures, profile_.total_instrs,
                               params.interval_len, params))
{
}

namespace {

/**
 * Truncates an op source at an absolute position, so the synthetic
 * generator models the same *finite* program a recorded uop trace
 * does: near the end of the run the queue drains instead of filling
 * with instructions the program never retires, which is what keeps
 * file-backed and synthetic measurements bit-identical on a recorded
 * round-trip (tests/windowsweep_test.cc).
 */
class CappedOpSource : public ooo::OpSource
{
  public:
    CappedOpSource(ooo::OpSource &inner, uint64_t limit)
        : inner_(inner), limit_(limit)
    {
    }

    uint64_t nextBatch(ooo::MicroOp *out, uint64_t max) override
    {
        uint64_t pos = inner_.position();
        if (pos >= limit_)
            return 0;
        return inner_.nextBatch(out, std::min(max, limit_ - pos));
    }

    uint64_t position() const override { return inner_.position(); }

  private:
    ooo::OpSource &inner_;
    uint64_t limit_;
};

/** Warmup geometry of one representative: the interval the replay
 *  cursor seats at and the instructions replayed before the
 *  measurement. */
struct RepWindow
{
    size_t start;
    size_t warm_start;
    uint64_t warm_instrs;
};

RepWindow
repWindow(const SamplePlan &plan, const SampleParams &params,
          size_t rep_index)
{
    capAssert(rep_index < plan.reps.size(), "rep index out of range");
    size_t start = plan.reps[rep_index].interval;
    uint64_t warm = warmupIntervals(params);
    size_t warm_start = start >= warm ? start - warm : 0;
    uint64_t warm_instrs =
        static_cast<uint64_t>(start - warm_start) * plan.interval_len;
    return {start, warm_start, warm_instrs};
}

} // namespace

IqRepMeasurement
IqSampler::measureRep(int entries, size_t rep_index) const
{
    RepWindow w = repWindow(plan_, params_, rep_index);
    if (!profile_.trace_path.empty()) {
        ooo::UopFileSource source(profile_.trace_path);
        source.restoreCursor(profile_.file_cursors[w.warm_start]);
        return measureRepFrom(source, entries, w.start, w.warm_instrs);
    }
    ooo::InstructionStream stream(app_.ilp, app_.seed);
    stream.restoreCursor(profile_.cursors[w.warm_start]);
    CappedOpSource source(stream, profile_.total_instrs);
    return measureRepFrom(source, entries, w.start, w.warm_instrs);
}

IqRepMeasurement
IqSampler::measureRepFrom(ooo::OpSource &source, int entries, size_t start,
                          uint64_t warm_instrs) const
{
    const uint64_t start_position = source.position();
    ooo::CoreParams cp;
    cp.queue_entries = entries;
    cp.dispatch_width = core::IqMachine::kDispatchWidth;
    cp.issue_width = core::IqMachine::kIssueWidth;
    ooo::CoreModel model(source, cp);
    model.seekTo(start_position);

    if (warm_instrs > 0)
        model.step(warm_instrs);

    // Measure against the absolute issue target: step() overshoots by
    // up to the issue width, so the warmup may already cover part of
    // the representative (the evaluateObserved chunking idiom).  A
    // short tail representative can even be covered entirely; the
    // window is then re-anchored at the overshoot point so the
    // measurement still observes `measure` instructions of real
    // execution instead of collapsing to zero cycles (and a zero CPI
    // that would poison the reconstruction).  The re-anchored window
    // is clamped to the end of the program -- a tail representative
    // overshot at the very end of the run has nothing left to
    // observe, so its residual cycles (possibly zero) are the honest
    // measurement.
    uint64_t measure = profile_.lengthOf(start);
    uint64_t avail = profile_.total_instrs - start_position;
    uint64_t target = warm_instrs + measure;
    uint64_t issued = model.issuedInstructions();
    if (issued >= target)
        target = std::min(issued + measure, avail);
    Cycles before = model.cycleCount();
    if (target > issued)
        model.step(target - issued);

    IqRepMeasurement m;
    m.instructions = measure;
    m.cycles = model.cycleCount() - before;
    m.warmup_instrs = warm_instrs;
    return m;
}

std::vector<IqRepMeasurement>
IqSampler::measureRepAllConfigs(size_t rep_index) const
{
    return measureRepConfigs(core::AdaptiveIqModel::studySizes(),
                             rep_index);
}

std::vector<IqRepMeasurement>
IqSampler::measureRepConfigs(const std::vector<int> &entries,
                             size_t rep_index) const
{
    RepWindow w = repWindow(plan_, params_, rep_index);
    if (!profile_.trace_path.empty()) {
        ooo::UopFileSource source(profile_.trace_path);
        source.restoreCursor(profile_.file_cursors[w.warm_start]);
        return measureRepChainFrom(source, entries, w.start,
                                   w.warm_instrs);
    }
    ooo::InstructionStream stream(app_.ilp, app_.seed);
    stream.restoreCursor(profile_.cursors[w.warm_start]);
    CappedOpSource source(stream, profile_.total_instrs);
    return measureRepChainFrom(source, entries, w.start, w.warm_instrs);
}

std::vector<IqRepMeasurement>
IqSampler::measureRepChainFrom(ooo::OpSource &source,
                               const std::vector<int> &sizes,
                               size_t start, uint64_t warm_instrs) const
{
    const uint64_t start_position = source.position();
    ooo::CoreParams cp;
    cp.queue_entries = sizes.front();
    cp.dispatch_width = core::IqMachine::kDispatchWidth;
    cp.issue_width = core::IqMachine::kIssueWidth;
    ooo::WindowSweeper sweeper(source, cp, sizes);

    // Shared warmup: every lane stops at its own overshoot point,
    // exactly where a dedicated CoreModel's step(warm_instrs) would.
    if (warm_instrs > 0)
        sweeper.advanceAllTo(warm_instrs);

    // Per-lane measurement marks, re-anchored per lane exactly as
    // measureRepFrom() re-anchors its window -- overshoot depends on
    // the queue size, so each lane's window can start elsewhere.  A
    // lane whose clamped window is already covered (tail rep overshot
    // at end of program) gets no mark and credits zero cycles, again
    // matching measureRepFrom().
    uint64_t measure = profile_.lengthOf(start);
    uint64_t avail = profile_.total_instrs - start_position;
    uint64_t max_target = 0;
    std::vector<Cycles> warm_cycles(sweeper.laneCount());
    std::vector<bool> marked(sweeper.laneCount(), false);
    for (size_t lane = 0; lane < sweeper.laneCount(); ++lane) {
        warm_cycles[lane] = sweeper.laneCycles(lane);
        uint64_t target = warm_instrs + measure;
        uint64_t issued = sweeper.laneIssued(lane);
        if (issued >= target)
            target = std::min(issued + measure, avail);
        if (target > issued) {
            sweeper.addLaneMark(lane, target);
            marked[lane] = true;
            max_target = std::max(max_target, target);
        }
    }
    if (max_target > 0)
        sweeper.advanceAllTo(max_target);

    std::vector<IqRepMeasurement> meas(sweeper.laneCount());
    for (size_t lane = 0; lane < sweeper.laneCount(); ++lane) {
        meas[lane].instructions = measure;
        meas[lane].warmup_instrs = warm_instrs;
        if (!marked[lane]) {
            meas[lane].cycles = 0;
            continue;
        }
        const std::vector<Cycles> &ticks = sweeper.laneMarkTicks(lane);
        capAssert(ticks.size() == 1, "lane missed its measurement mark");
        meas[lane].cycles = ticks[0] - warm_cycles[lane];
    }
    return meas;
}

std::vector<std::vector<IqRepMeasurement>>
IqSampler::measureAllConfigs() const
{
    size_t n_cfg = core::AdaptiveIqModel::studySizes().size();
    std::vector<std::vector<IqRepMeasurement>> meas(
        n_cfg, std::vector<IqRepMeasurement>(plan_.reps.size()));
    for (size_t r = 0; r < plan_.reps.size(); ++r) {
        std::vector<IqRepMeasurement> per_cfg = measureRepAllConfigs(r);
        for (size_t c = 0; c < n_cfg; ++c)
            meas[c][r] = per_cfg[c];
    }
    return meas;
}

SampledIqPerf
IqSampler::reconstruct(int entries,
                       const std::vector<IqRepMeasurement> &meas) const
{
    capAssert(meas.size() == plan_.reps.size(),
              "measurement count does not match the plan");
    Nanoseconds cycle = model_->cycleNs(entries);

    std::vector<double> rep_cpi;
    std::vector<double> rep_tpi;
    for (const IqRepMeasurement &m : meas) {
        double cpi = m.instructions
                         ? static_cast<double>(m.cycles) /
                               static_cast<double>(m.instructions)
                         : 0.0;
        rep_cpi.push_back(cpi);
        rep_tpi.push_back(cycle * cpi);
    }

    double total_w = 0.0;
    double cpi = 0.0;
    for (size_t r = 0; r < plan_.reps.size(); ++r) {
        double w = static_cast<double>(plan_.reps[r].weight);
        if (w <= 0.0)
            continue;
        total_w += w;
        cpi += w * rep_cpi[r];
    }
    capAssert(total_w > 0.0, "plan has no weighted representatives");
    cpi /= total_w;

    SampledIqPerf out;
    out.perf.entries = entries;
    out.perf.instructions = plan_.total_len;
    double total_cycles = cpi * static_cast<double>(plan_.total_len);
    out.perf.cycles = static_cast<Cycles>(total_cycles + 0.5);
    out.perf.ipc = cpi > 0.0 ? 1.0 / cpi : 0.0;
    out.perf.tpi_ns = cycle * cpi;

    double half = confidenceHalfWidth(plan_, rep_tpi, total_w,
                                      params_.confidence_z);
    out.tpi_lo_ns = out.perf.tpi_ns - half;
    out.tpi_hi_ns = out.perf.tpi_ns + half;

    for (size_t r = 0; r < plan_.reps.size(); ++r) {
        out.simulated_instrs +=
            profile_.lengthOf(plan_.reps[r].interval) +
            meas[r].warmup_instrs;
    }
    return out;
}

SampledIqPerf
IqSampler::evaluate(int entries) const
{
    std::vector<IqRepMeasurement> meas;
    for (size_t r = 0; r < plan_.reps.size(); ++r)
        meas.push_back(measureRep(entries, r));
    return reconstruct(entries, meas);
}

} // namespace cap::sample
