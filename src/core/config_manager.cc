#include "config_manager.h"

#include <algorithm>

#include "util/status.h"

namespace cap::core {

SelectionResult
selectConfigurations(const std::vector<std::vector<double>> &tpi)
{
    capAssert(!tpi.empty(), "selection needs at least one application");
    size_t configs = tpi.front().size();
    capAssert(configs > 0, "selection needs at least one configuration");
    for (const auto &row : tpi) {
        capAssert(row.size() == configs,
                  "ragged TPI matrix: %zu vs %zu", row.size(), configs);
    }

    SelectionResult result;
    size_t apps = tpi.size();

    // Conventional: the single configuration with the lowest mean TPI
    // across all applications (how a fixed design is chosen).
    double best_mean = 0.0;
    for (size_t c = 0; c < configs; ++c) {
        double mean = 0.0;
        for (size_t a = 0; a < apps; ++a)
            mean += tpi[a][c];
        mean /= static_cast<double>(apps);
        if (c == 0 || mean < best_mean) {
            best_mean = mean;
            result.best_conventional = c;
        }
    }
    result.conventional_mean_tpi = best_mean;

    // Process-level adaptive: per-application argmin.
    double adaptive_mean = 0.0;
    result.per_app_best.resize(apps);
    for (size_t a = 0; a < apps; ++a) {
        size_t best = 0;
        for (size_t c = 1; c < configs; ++c) {
            if (tpi[a][c] < tpi[a][best])
                best = c;
        }
        result.per_app_best[a] = best;
        adaptive_mean += tpi[a][best];
    }
    result.adaptive_mean_tpi = adaptive_mean / static_cast<double>(apps);
    return result;
}

ConfigurationManager::ConfigurationManager(timing::ClockTable clock_table)
    : clock_table_(std::move(clock_table))
{
}

size_t
ConfigurationManager::addStructure(
    std::shared_ptr<AdaptiveStructure> structure)
{
    capAssert(structure != nullptr, "null adaptive structure");
    capAssert(structure->configCount() > 0,
              "structure '%s' has no configurations",
              structure->name().c_str());
    structures_.push_back(std::move(structure));
    return structures_.size() - 1;
}

const AdaptiveStructure &
ConfigurationManager::structure(size_t handle) const
{
    capAssert(handle < structures_.size(), "bad structure handle");
    return *structures_[handle];
}

Nanoseconds
ConfigurationManager::cycleFor(const std::vector<int> &joint) const
{
    capAssert(joint.size() == structures_.size(),
              "joint configuration width %zu != structure count %zu",
              joint.size(), structures_.size());
    std::vector<timing::ClockRequirement> reqs;
    reqs.reserve(joint.size());
    for (size_t i = 0; i < joint.size(); ++i) {
        capAssert(joint[i] >= 0 && joint[i] < structures_[i]->configCount(),
                  "config %d out of range for '%s'", joint[i],
                  structures_[i]->name().c_str());
        reqs.push_back({structures_[i]->name(),
                        structures_[i]->cycleRequirement(joint[i])});
    }
    return clock_table_.cycleFor(reqs);
}

Cycles
ConfigurationManager::switchOverhead(const std::vector<int> &from,
                                     const std::vector<int> &to) const
{
    capAssert(from.size() == structures_.size() &&
              to.size() == structures_.size(),
              "joint configuration width mismatch");
    Cycles overhead = 0;
    bool any_change = false;
    for (size_t i = 0; i < structures_.size(); ++i) {
        if (from[i] != to[i]) {
            any_change = true;
            overhead +=
                structures_[i]->reconfigureCleanupCycles(from[i], to[i]);
        }
    }
    if (any_change && cycleFor(from) != cycleFor(to))
        overhead += clock_table_.switchPenaltyCycles();
    return overhead;
}

} // namespace cap::core
