/**
 * @file
 * Compiler-directed (profile-guided) configuration management --
 * paper Section 4: "A CAP compiler may perform profiling analysis to
 * determine at which points within the application particular CAS
 * configurations should be enabled."
 *
 * The flow has two halves:
 *  - buildScheduleFromProfile(): a profiling pass measures every
 *    candidate configuration per interval (oracle-style lanes) and
 *    compresses the winners into a static reconfiguration schedule
 *    with hysteresis, so the schedule only switches where a different
 *    configuration wins durably;
 *  - runWithSchedule(): executes the application once, applying the
 *    schedule at interval boundaries and paying the real costs (queue
 *    drain + clock-switch pause).
 *
 * Against the hardware interval controller, the compiler schedule
 * knows the future of its profiling run but cannot react to anything
 * the profile did not show.
 */

#ifndef CAPSIM_CORE_PROFILE_GUIDED_H
#define CAPSIM_CORE_PROFILE_GUIDED_H

#include <vector>

#include "core/adaptive_iq.h"
#include "core/interval_controller.h"
#include "core/machine.h"

namespace cap::core {

/** One segment of a static reconfiguration schedule. */
struct ScheduledSegment
{
    /** First interval this segment covers. */
    uint64_t start_interval = 0;
    /** Queue entries to run with. */
    int entries = 64;
};

/** Static schedule: segments in increasing start_interval order. */
using ConfigSchedule = std::vector<ScheduledSegment>;

/**
 * Profiling pass: measure every candidate per interval and compress
 * the winners into a schedule.
 *
 * @param hysteresis A new winner must hold for this many consecutive
 *        intervals before the schedule switches to it.
 */
ConfigSchedule buildScheduleFromProfile(
    const AdaptiveIqModel &model, const trace::AppProfile &app,
    uint64_t instructions, const std::vector<int> &candidates,
    uint64_t interval_instrs = kIntervalInstructions, int hysteresis = 4);

/**
 * Execute @p app once, applying @p schedule at interval boundaries
 * (drain + clock-pause costs included).
 *
 * @param switch_penalty_cycles Clock pause per reconfiguration, in
 *        cycles at the new clock -- the same knob the interval
 *        controller and the oracle share (machine.h).
 */
IntervalRunResult runWithSchedule(
    const AdaptiveIqModel &model, const trace::AppProfile &app,
    uint64_t instructions, const ConfigSchedule &schedule,
    uint64_t interval_instrs = kIntervalInstructions,
    Cycles switch_penalty_cycles = kClockSwitchPenaltyCycles);

} // namespace cap::core

#endif // CAPSIM_CORE_PROFILE_GUIDED_H
