#include "adaptive_tlb.h"

#include <map>

#include "cache/tlb.h"
#include "util/rng.h"
#include "util/status.h"

namespace cap::core {

namespace {

// CAM match-path constants at the 0.25 um reference, ns.  Calibrated
// so 128 entries fit under the smallest cache cycle (~0.62 ns at
// 0.18 um) while 256 entries force a slower clock.
constexpr double kLookupFixed = 0.30;
constexpr double kLookupPerEntry = 0.0042;

} // namespace

TlbBehavior
tlbBehaviorFor(const std::string &app_name)
{
    // Defaults cover the compact-working-set majority; exceptions are
    // the scientific codes with page-rich or streaming behaviour.
    static const std::map<std::string, TlbBehavior> exceptions = {
        // Large scattered data structures: page-hungry.
        {"stereo", {130, 1.05, 0.0008, 256}},
        {"appcg", {150, 1.0, 0.0005, 256}},
        {"airshed", {96, 1.1, 0.0010, 256}},
        {"swim", {110, 1.05, 0.0010, 256}},
        {"wave5", {88, 1.1, 0.0010, 256}},
        // Streaming codes: compulsory page misses dominate.
        {"applu", {40, 1.1, 0.0030, 256}},
        {"tomcatv", {36, 1.1, 0.0025, 256}},
        {"mgrid", {36, 1.1, 0.0020, 256}},
        {"su2cor", {56, 1.1, 0.0012, 256}},
        {"hydro2d", {56, 1.1, 0.0012, 256}},
        // gcc touches many small regions (text+data mix).
        {"gcc", {72, 1.15, 0.0008, 256}},
        {"vortex", {68, 1.15, 0.0008, 256}},
    };
    auto it = exceptions.find(app_name);
    if (it != exceptions.end())
        return it->second;
    return TlbBehavior{};
}

AdaptiveTlbModel::AdaptiveTlbModel(const timing::Technology &tech)
    : tech_(&tech)
{
}

std::vector<int>
AdaptiveTlbModel::studySizes()
{
    return {32, 64, 128, 256};
}

Nanoseconds
AdaptiveTlbModel::lookupNs(int entries) const
{
    capAssert(entries >= 1, "TLB needs entries");
    return tech_->deviceScale() *
           (kLookupFixed + kLookupPerEntry * static_cast<double>(entries));
}

TlbPerf
AdaptiveTlbModel::evaluate(const trace::AppProfile &app, int entries,
                           uint64_t accesses) const
{
    capAssert(accesses > 0, "evaluation needs accesses");
    TlbBehavior behavior = tlbBehaviorFor(app.name);

    cache::Tlb tlb(entries);
    Rng rng(app.seed ^ 0x71b7a6b1ULL);
    // Streamed pages live far above the resident set and advance one
    // fresh page every stream_touches streaming references.
    const uint64_t stream_base = 1'000'000;
    uint64_t stream_count = 0;
    for (uint64_t i = 0; i < accesses; ++i) {
        uint64_t page;
        if (rng.chance(behavior.stream_fraction)) {
            page = stream_base +
                   stream_count /
                       static_cast<uint64_t>(behavior.stream_touches);
            ++stream_count;
        } else {
            page = rng.zipf(static_cast<uint64_t>(behavior.pages),
                            behavior.zipf_s);
        }
        tlb.accessPage(page);
    }

    TlbPerf perf;
    perf.entries = entries;
    perf.miss_ratio = tlb.stats().missRatio();
    perf.lookup_ns = lookupNs(entries);
    return perf;
}

} // namespace cap::core
