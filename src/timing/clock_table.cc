#include "clock_table.h"

#include <algorithm>
#include <cmath>

#include "util/status.h"

namespace cap::timing {

void
ClockTable::setFixedFloor(Nanoseconds cycle_ns)
{
    capAssert(cycle_ns >= 0.0, "negative cycle time");
    fixed_floor_ns_ = cycle_ns;
}

void
ClockTable::setQuantizationStep(Nanoseconds step_ns)
{
    capAssert(step_ns >= 0.0, "negative quantization step");
    quantum_ns_ = step_ns;
}

Nanoseconds
ClockTable::cycleFor(const std::vector<ClockRequirement> &reqs) const
{
    Nanoseconds cycle = fixed_floor_ns_;
    for (const ClockRequirement &req : reqs) {
        capAssert(req.cycle_ns >= 0.0,
                  "negative requirement from '%s'", req.structure.c_str());
        cycle = std::max(cycle, req.cycle_ns);
    }
    if (quantum_ns_ > 0.0) {
        double steps = std::ceil(cycle / quantum_ns_ - 1e-12);
        cycle = std::max(1.0, steps) * quantum_ns_;
    }
    return cycle;
}

Nanoseconds
ClockTable::cycleFor(Nanoseconds requirement_ns) const
{
    return cycleFor(std::vector<ClockRequirement>{
        {"cas", requirement_ns},
    });
}

} // namespace cap::timing
