/**
 * @file
 * Trace file input/output in a dinero-style ASCII format.
 *
 * CAPsim's synthetic workloads stand in for the paper's Atom traces,
 * but the cache simulator itself is trace-format agnostic: users with
 * real address traces can run them directly.  The format is one
 * record per line,
 *
 *   <type> <hex-address>
 *
 * where type 0 is a load and 1 is a store (dinero "din" data
 * references).  Lines starting with '#' and blank lines are ignored;
 * instruction-fetch records (type 2) are skipped with a warning, as
 * the D-cache study does not consume them.
 */

#ifndef CAPSIM_TRACE_FILE_TRACE_H
#define CAPSIM_TRACE_FILE_TRACE_H

#include <cstdio>
#include <memory>
#include <string>

#include "trace/record.h"

namespace cap::trace {

/** Reads data-cache references from a din-style ASCII file. */
class FileTraceSource : public TraceSource
{
  public:
    /** Opens @p path; fatal() if it cannot be read. */
    explicit FileTraceSource(const std::string &path);

    bool next(TraceRecord &record) override;

    /** Batched read: one virtual dispatch per buffer of records. */
    uint64_t nextBatch(TraceRecord *out, uint64_t max) override;

    /** Records returned so far. */
    uint64_t produced() const { return produced_; }

    /** Records skipped (comments, ifetches, malformed lines). */
    uint64_t skipped() const { return skipped_; }

    /**
     * A saved read position (file offset + record accounting), the
     * file-backed counterpart of SyntheticTraceSource::Cursor; lets
     * the sampled-simulation replayer fast-forward a real trace.
     */
    struct Cursor
    {
        int64_t offset = 0;
        uint64_t line = 0;
        uint64_t produced = 0;
        uint64_t skipped = 0;
    };

    /** Snapshot the read position. */
    Cursor saveCursor() const;

    /** Restore a position saved from the same file; fatal on seek
     *  failure. */
    void restoreCursor(const Cursor &cursor);

  private:
    struct FileCloser
    {
        void operator()(std::FILE *f) const
        {
            if (f)
                std::fclose(f);
        }
    };

    std::string path_;
    std::unique_ptr<std::FILE, FileCloser> file_;
    uint64_t line_ = 0;
    uint64_t produced_ = 0;
    uint64_t skipped_ = 0;
};

/**
 * Write up to @p limit records from @p source to @p path in the same
 * format (0 = load, 1 = store).
 * @return Number of records written.
 */
uint64_t writeTraceFile(const std::string &path, TraceSource &source,
                        uint64_t limit);

} // namespace cap::trace

#endif // CAPSIM_TRACE_FILE_TRACE_H
