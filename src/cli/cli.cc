#include "cli.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>
#include <map>
#include <memory>
#include <set>

#include "core/adaptive_cache.h"
#include "core/adaptive_iq.h"
#include "mem/mem_model.h"
#include "core/experiment.h"
#include "core/interval_controller.h"
#include "obs/decision_trace.h"
#include "obs/hooks.h"
#include "obs/registry.h"
#include "obs/trace_reader.h"
#include "ooo/stream.h"
#include "ooo/uop_file.h"
#include "sample/study.h"
#include "serve/render.h"
#include "serve/server.h"
#include "serve/transport.h"
#include "trace/analysis.h"
#include "trace/file_trace.h"
#include "trace/stream.h"
#include "trace/workloads.h"
#include "util/parallel.h"
#include "util/table.h"
#include "util/units.h"

namespace cap::cli {

std::string
Options::get(const std::string &key, const std::string &fallback) const
{
    auto it = flags.find(key);
    return it == flags.end() ? fallback : it->second;
}

uint64_t
Options::getU64(const std::string &key, uint64_t fallback) const
{
    auto it = flags.find(key);
    if (it == flags.end())
        return fallback;
    char *end = nullptr;
    uint64_t value = std::strtoull(it->second.c_str(), &end, 10);
    return (end && *end == '\0') ? value : fallback;
}

double
Options::getDouble(const std::string &key, double fallback) const
{
    auto it = flags.find(key);
    if (it == flags.end())
        return fallback;
    char *end = nullptr;
    double value = std::strtod(it->second.c_str(), &end);
    return (end != it->second.c_str() && *end == '\0') ? value : fallback;
}

Options
parseArgs(const std::vector<std::string> &args)
{
    Options options;
    for (size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        if (arg.rfind("--", 0) != 0) {
            options.positional.push_back(arg);
            continue;
        }
        std::string key = arg.substr(2);
        std::string value;
        size_t eq = key.find('=');
        if (eq != std::string::npos) {
            value = key.substr(eq + 1);
            key = key.substr(0, eq);
        } else if (i + 1 < args.size() &&
                   args[i + 1].rfind("--", 0) != 0) {
            value = args[++i];
        }
        options.flags[key] = value;
    }
    return options;
}

namespace {

int
cmdHelp(std::ostream &out)
{
    out << "capsim -- Complexity-Adaptive Processor simulator\n"
           "\n"
           "usage: capsim <command> [options]\n"
           "\n"
           "commands:\n"
           "  apps                         list the 22-application suite\n"
           "  timing                       print the clock tables\n"
           "  cache-sweep <app|all>        TPI vs L1/L2 boundary\n"
           "      [--refs N]               references per run\n"
           "      [--jobs N]               worker threads (0 = all cores)\n"
           "      [--sample[=k,ivl[,wrm]]] estimate cells from cluster\n"
           "                               representatives (sampled mode)\n"
           "      [--no-onepass]           one hierarchy per boundary\n"
           "                               instead of the one-pass\n"
           "                               stack-distance sweep\n"
           "      [--mem SPEC]             miss backend: flat (default)\n"
           "                               or dram[:k=v,..] -- banked\n"
           "                               DRAM + MSHRs (docs/MEMORY.md)\n"
           "      [--telemetry-json PATH]  write execution telemetry\n"
           "  iq-sweep <app|all>           TPI vs instruction-queue size\n"
           "      [--instrs N]             instructions per run\n"
           "      [--jobs N]               worker threads (0 = all cores)\n"
           "      [--sample[=k,ivl[,wrm]]] estimate cells from cluster\n"
           "                               representatives (sampled mode)\n"
           "      [--no-onepass]           one core per queue size\n"
           "                               instead of the one-pass\n"
           "                               window sweep\n"
           "      [--mem SPEC]             accepted for symmetry; the\n"
           "                               IQ machine models no memory\n"
           "      [--telemetry-json PATH]  write execution telemetry\n"
           "  sample-profile <app>         cluster one app's intervals and\n"
           "                               print the sampling plan\n"
           "      [--study cache|iq]       which side to profile\n"
           "      [--refs N | --instrs N]  run length\n"
           "      [--interval N] [--clusters K] [--warmup N]\n"
           "      [--cold-prefix N]        exact cold-start span (cache)\n"
           "  sample-run <app|all>         sampled sweep, optionally\n"
           "                               validated against the full run\n"
           "      [--study cache|iq]       which side to run\n"
           "      [--refs N | --instrs N]  run length\n"
           "      [--interval N] [--clusters K] [--warmup N]\n"
           "      [--cold-prefix N]        exact cold-start span (cache)\n"
           "      [--jobs N]               worker threads (0 = all cores)\n"
           "      [--validate]             also run the full sweep and\n"
           "                               report error/speedup per app\n"
           "      [--check]                with --validate: exit 1 unless\n"
           "                               MAE <= --mae-max and the CI\n"
           "                               brackets the best config\n"
           "      [--mae-max PCT]          --check threshold (default 2)\n"
           "      [--no-onepass]           per-config replay instead of\n"
           "                               the one-pass sweep\n"
           "      [--oracle]               sampled per-interval oracle\n"
           "                               (iq side, single app; honors\n"
           "                               --no-onepass)\n"
           "      [--trace-file PATH]      profile + replay a recorded\n"
           "                               trace file instead of the\n"
           "                               synthetic generator (either\n"
           "                               study side, single app)\n"
           "      [--mem SPEC]             cache side requires flat;\n"
           "                               iq side accepts and ignores\n"
           "      [--telemetry-json PATH]  write execution telemetry\n"
           "  interval-run <app>           Section-6 interval controller\n"
           "      [--instrs N]             instructions to run\n"
           "      [--entries N]            initial queue size\n"
           "      [--interval N]           interval length, instructions\n"
           "      [--probe-period N]       intervals between probes\n"
           "      [--confidence N]         confirming probes required\n"
           "      [--trigger MODE]         probe scheduler: period\n"
           "                               (default), phase, or hybrid\n"
           "      [--probe-max N]          backoff ceiling on the probe\n"
           "                               period (phase/hybrid)\n"
           "      [--phase-threshold X]    phase-detector assignment\n"
           "                               radius, z-units\n"
           "      [--compare-triggers]     run period/phase/hybrid plus\n"
           "                               the oracle and report the\n"
           "                               TPI gap each mode closes\n"
           "      [--no-onepass]           per-candidate oracle lanes\n"
           "                               instead of the one-pass\n"
           "                               window sweep\n"
           "      [--mem SPEC]             accepted for symmetry; the\n"
           "                               IQ machine models no memory\n"
           "      [--telemetry-json PATH]  write execution telemetry\n"
           "  analyze-trace <path>         per-interval tables from a\n"
           "                               JSONL decision trace\n"
           "      [--app NAME]             filter by application\n"
           "      [--lane LANE]            filter by lane\n"
           "      [--first N] [--last N]   interval range\n"
           "      [--stride N]             print every Nth interval\n"
           "  gen-trace <app> <path>       export a synthetic trace file\n"
           "      [--study cache|iq]       address trace (cache) or uop\n"
           "                               trace (iq)\n"
           "      [--refs N | --instrs N]  records / uops to write\n"
           "  analyze <path>               characterize a trace file\n"
           "      [--limit N] [--block B]  records to read, block bytes\n"
           "  serve                        study-server daemon: JSONL\n"
           "                               protocol, cached cells\n"
           "                               (docs/SERVER.md)\n"
           "      --socket PATH | --stdio  transport\n"
           "      [--jobs N]               cell workers (0 = all cores)\n"
           "      [--queue N]              submit-queue bound\n"
           "      [--cache N]              in-memory cache entries\n"
           "      [--spill PATH]           JSONL cache spill file\n"
           "      [--heartbeats]           stream progress events\n"
           "      [--heartbeat-period S]   seconds between heartbeats\n"
           "  client <study-file>          submit a study to a daemon,\n"
           "                               print the offline verbs'\n"
           "                               exact bytes\n"
           "      --socket PATH            daemon socket\n"
           "      [--events PATH]          append protocol events\n"
           "      [--shutdown]             stop the daemon afterwards\n"
           "  help                         this text\n"
           "\n"
           "observability (sweeps, sample-*, and interval-run):\n"
           "  --trace PATH          JSONL decision trace to PATH, plus a\n"
           "                        Chrome trace to PATH.chrome.json\n"
           "  --chrome-trace PATH   Chrome trace_event JSON destination\n"
           "  --metrics-json PATH   telemetry + counter registry as JSON\n"
           "  --host-profile[=P]    host-side span profiler: stage table\n"
           "                        to stderr, Chrome trace of the spans\n"
           "                        to P when given (results unchanged)\n"
           "  --progress[=P]        live heartbeats: cells done, rate,\n"
           "                        ETA, worker utilization; bare = text\n"
           "                        on stderr, P = JSONL events appended\n"
           "  (use --flag=value before positional arguments; env:\n"
           "  CAPSIM_TRACE / CAPSIM_METRICS / CAPSIM_HOST_PROFILE /\n"
           "  CAPSIM_PROGRESS do the same for the bench binaries; see\n"
           "  docs/OBSERVABILITY.md)\n";
    return 0;
}

int
cmdApps(std::ostream &out)
{
    TableWriter table("Workload suite");
    table.setHeader({"app", "suite", "refs/instr", "cache_mix",
                     "ilp_phases", "cache_study"});
    for (const trace::AppProfile &app : trace::workloadSuite()) {
        table.addRow({Cell(app.name), Cell(trace::suiteName(app.suite)),
                      Cell(app.cache.refs_per_instr, 2),
                      Cell(static_cast<int>(app.cache.mix.size())),
                      Cell(static_cast<int>(app.ilp.phases.size())),
                      Cell(app.in_cache_study ? "yes" : "no")});
    }
    table.renderAscii(out);
    return 0;
}

int
cmdTiming(std::ostream &out)
{
    core::AdaptiveCacheModel cache_model;
    TableWriter cache_table("Adaptive D-cache hierarchy clock table");
    cache_table.setHeader({"L1_config", "cycle_ns", "clock_GHz",
                           "L2_hit_cycles", "miss_cycles"});
    for (const core::CacheBoundaryTiming &t :
         cache_model.allBoundaryTimings()) {
        cache_table.addRow(
            {Cell(std::to_string(t.l1_bytes / 1024) + "KB/" +
                  std::to_string(t.l1_assoc) + "way"),
             Cell(t.cycle_ns, 3), Cell(1.0 / t.cycle_ns, 2),
             Cell(static_cast<int>(t.l2_hit_cycles)),
             Cell(static_cast<int>(t.miss_cycles))});
    }
    cache_table.renderAscii(out);

    core::AdaptiveIqModel iq_model;
    TableWriter iq_table("Adaptive instruction-queue clock table");
    iq_table.setHeader({"entries", "cycle_ns", "clock_GHz"});
    for (const core::IqTiming &t : iq_model.allTimings()) {
        iq_table.addRow({Cell(t.entries), Cell(t.cycle_ns, 3),
                         Cell(1.0 / t.cycle_ns, 2)});
    }
    iq_table.renderAscii(out);
    return 0;
}

std::vector<trace::AppProfile>
selectApps(const std::string &which, bool cache_study, std::ostream &err,
           bool &ok)
{
    ok = true;
    if (which == "all") {
        return cache_study ? trace::cacheStudyApps()
                           : trace::iqStudyApps();
    }
    for (const trace::AppProfile &app : trace::workloadSuite()) {
        if (app.name == which)
            return {app};
    }
    err << "capsim: unknown application '" << which
        << "' (try 'capsim apps')\n";
    ok = false;
    return {};
}

/** The --jobs flag: absent/1 = serial, 0 = every hardware thread. */
int
jobsFlag(const Options &options)
{
    uint64_t jobs = options.getU64("jobs", 1);
    return jobs == 0 ? defaultJobs() : static_cast<int>(jobs);
}

/** The --onepass / --no-onepass pair: sweeps and interval oracles
 *  default to the one-pass counterfactual engines (the stack-distance
 *  walk on the cache side, the window sweep on the IQ side; see
 *  docs/PERF.md); --no-onepass is the escape hatch back to one
 *  simulation per candidate.  Both are bare flags -- place them after
 *  the positional argument. */
bool
onePassFlag(const Options &options)
{
    if (options.flags.count("no-onepass"))
        return false;
    return true;
}

/** The --mem flag: "flat" (default) keeps the fixed-latency miss
 *  model; "dram[:k=v,..]" selects the banked DRAM + MSHR backend
 *  (docs/MEMORY.md).  Returns false (with a message) on a bad spec;
 *  @p config is untouched then. */
bool
memFlag(const Options &options, mem::MemConfig &config, std::ostream &err)
{
    std::string spec = options.get("mem", "flat");
    std::string error;
    if (!mem::parseMemSpec(spec, config, error)) {
        err << "capsim: " << error << "\n";
        return false;
    }
    return true;
}

/** Honour --telemetry-json: write telemetry to PATH when given. */
int
writeTelemetry(const Options &options,
               const core::RunTelemetry &telemetry, std::ostream &err)
{
    std::string path = options.get("telemetry-json");
    if (path.empty())
        return 0;
    std::ofstream file(path);
    if (!file) {
        err << "capsim: cannot write telemetry to '" << path << "'\n";
        return 2;
    }
    telemetry.writeJson(file);
    return 0;
}

/**
 * The observation flags shared by the sweep / sample / interval
 * commands:
 *   --trace PATH          JSONL decision trace to PATH, and a Chrome
 *                         trace to PATH.chrome.json
 *   --chrome-trace PATH   Chrome trace destination (overrides the
 *                         derived name; usable without --trace)
 *   --metrics-json PATH   telemetry + counter registry as one JSON doc
 *   --host-profile[=PATH] host-side span profiler: stage-attribution
 *                         table to stderr, plus a Chrome trace of the
 *                         spans to PATH when given
 *   --progress[=PATH]     live heartbeats; bare/stderr = text lines
 *                         to stderr, PATH = JSONL events appended
 * With none of the flags given, hooks() is inert and the run pays
 * nothing for the instrumentation.  The host-profile and progress
 * sinks observe host time only, never simulated state, so results
 * are bit-identical with them on or off (docs/MODEL.md section 11).
 */
struct ObsSession
{
    obs::DecisionTrace trace;
    obs::CounterRegistry registry;
    std::string jsonl_path;
    std::string chrome_path;
    std::string metrics_path;
    std::string host_profile_path;
    std::unique_ptr<obs::SpanProfiler> profiler;
    std::unique_ptr<std::ofstream> progress_file;
    std::unique_ptr<obs::ProgressMeter> progress;

    obs::Hooks hooks()
    {
        obs::Hooks h;
        if (!jsonl_path.empty() || !chrome_path.empty())
            h.trace = &trace;
        if (!metrics_path.empty())
            h.registry = &registry;
        h.profiler = profiler.get();
        h.progress = progress.get();
        return h;
    }

    ObsSession() = default;
    ObsSession(ObsSession &&) = default;
    ObsSession &operator=(ObsSession &&) = default;

    ~ObsSession()
    {
        // Error paths return before writeHostProfile; make sure no
        // dangling global span pointer survives this session.
        if (profiler)
            profiler->disarm();
    }
};

ObsSession
obsSessionFromFlags(const Options &options, std::ostream &err)
{
    ObsSession session;
    session.jsonl_path = options.get("trace");
    session.chrome_path = options.get("chrome-trace");
    if (session.chrome_path.empty() && !session.jsonl_path.empty())
        session.chrome_path = session.jsonl_path + ".chrome.json";
    session.metrics_path = options.get("metrics-json");
    if (options.flags.count("host-profile")) {
        session.host_profile_path = options.get("host-profile");
        session.profiler = std::make_unique<obs::SpanProfiler>();
        session.profiler->arm();
    }
    if (options.flags.count("progress")) {
        std::string spec = options.get("progress");
        if (spec.empty() || spec == "1" || spec == "stderr") {
            session.progress =
                std::make_unique<obs::ProgressMeter>(err, false);
        } else {
            session.progress_file = std::make_unique<std::ofstream>(
                spec, std::ios::app);
            if (*session.progress_file) {
                session.progress = std::make_unique<obs::ProgressMeter>(
                    *session.progress_file, true);
            } else {
                err << "capsim: cannot write progress to '" << spec
                    << "', heartbeats disabled\n";
                session.progress_file.reset();
            }
        }
    }
    return session;
}

/**
 * Finish --host-profile: stop accepting spans, then emit the Chrome
 * trace (when a PATH was given) and the stage-attribution table to
 * @p err.  Safe to call when the flag was absent (no-op), and usable
 * without telemetry (sample-profile has none).
 */
int
writeHostProfile(ObsSession &session, std::ostream &err)
{
    if (!session.profiler)
        return 0;
    session.profiler->disarm();
    if (!session.host_profile_path.empty()) {
        std::ofstream file(session.host_profile_path);
        if (!file) {
            err << "capsim: cannot write '"
                << session.host_profile_path << "'\n";
            return 2;
        }
        session.profiler->writeChromeTrace(file);
    }
    session.profiler->writeStageTable(err);
    return 0;
}

int
writeObsOutputs(ObsSession &session,
                const core::RunTelemetry &telemetry, std::ostream &err)
{
    auto open = [&err](const std::string &path, std::ofstream &file) {
        file.open(path);
        if (!file)
            err << "capsim: cannot write '" << path << "'\n";
        return static_cast<bool>(file);
    };
    if (!session.jsonl_path.empty()) {
        std::ofstream file;
        if (!open(session.jsonl_path, file))
            return 2;
        session.trace.writeJsonl(file);
    }
    if (!session.chrome_path.empty()) {
        std::ofstream file;
        if (!open(session.chrome_path, file))
            return 2;
        session.trace.writeChromeTrace(file);
    }
    if (!session.metrics_path.empty()) {
        std::ofstream file;
        if (!open(session.metrics_path, file))
            return 2;
        telemetry.writeJson(file, &session.registry);
    }
    return writeHostProfile(session, err);
}

/**
 * The --sample flag of the sweep commands: absent leaves @p enabled
 * false; present (bare, or "k[,interval[,warmup]]") switches the sweep
 * to sampled mode with those knobs over the library defaults.  Use the
 * `--sample=...` form when the flag precedes a positional argument.
 */
bool
sampleFlag(const Options &options, sample::SampleParams &params,
           std::ostream &err, bool &enabled)
{
    enabled = options.flags.count("sample") > 0;
    if (!enabled)
        return true;
    std::string spec = options.get("sample");
    if (spec.empty())
        return true;
    std::vector<uint64_t> values;
    size_t start = 0;
    for (;;) {
        size_t comma = spec.find(',', start);
        std::string part =
            comma == std::string::npos
                ? spec.substr(start)
                : spec.substr(start, comma - start);
        char *end = nullptr;
        uint64_t value = std::strtoull(part.c_str(), &end, 10);
        if (part.empty() || !end || *end != '\0' || value == 0) {
            err << "capsim: bad --sample spec '" << spec
                << "' (want k[,interval[,warmup]]; use --sample=... "
                   "when followed by an application)\n";
            return false;
        }
        values.push_back(value);
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    if (values.size() > 3) {
        err << "capsim: --sample takes at most k,interval,warmup\n";
        return false;
    }
    params.clusters = static_cast<size_t>(values[0]);
    if (values.size() > 1)
        params.interval_len = values[1];
    if (values.size() > 2)
        params.warmup_len = values[2];
    return true;
}

/** The sample-profile / sample-run knob flags over library defaults. */
sample::SampleParams
sampleParamsFromKnobs(const Options &options)
{
    sample::SampleParams params;
    params.interval_len = options.getU64("interval", params.interval_len);
    params.clusters = static_cast<size_t>(
        options.getU64("clusters", params.clusters));
    params.warmup_len = options.getU64("warmup", params.warmup_len);
    params.cold_prefix_len =
        options.getU64("cold-prefix", params.cold_prefix_len);
    return params;
}

int
cmdCacheSweep(const Options &options, std::ostream &out, std::ostream &err)
{
    if (options.positional.empty()) {
        err << "capsim: cache-sweep needs an application (or 'all')\n";
        return 2;
    }
    bool ok = false;
    auto apps = selectApps(options.positional[0], true, err, ok);
    if (!ok)
        return 2;
    uint64_t refs = options.getU64("refs", 150000);
    sample::SampleParams sparams;
    bool sampled = false;
    if (!sampleFlag(options, sparams, err, sampled))
        return 2;
    mem::MemConfig mem_config;
    if (!memFlag(options, mem_config, err))
        return 2;
    if (sampled && mem_config.isDram()) {
        err << "capsim: --sample supports --mem=flat only (sampled "
               "reconstruction assumes a position-independent miss "
               "cost)\n";
        return 2;
    }

    ObsSession session = obsSessionFromFlags(options, err);
    core::AdaptiveCacheModel model;
    model.setMemConfig(mem_config);

    std::vector<std::string> names;
    for (const trace::AppProfile &app : apps)
        names.push_back(app.name);

    if (sampled) {
        sample::SampledCacheStudy study = sample::runSampledCacheStudy(
            model, apps, refs, sparams, 8, jobsFlag(options),
            session.hooks(), onePassFlag(options));
        serve::renderSampledCacheSweep(out, names, study.perf, refs);
        if (int rc = writeTelemetry(options, study.telemetry, err))
            return rc;
        return writeObsOutputs(session, study.telemetry, err);
    }

    core::CacheStudy study = core::runCacheStudy(
        model, apps, refs, 8, jobsFlag(options), session.hooks(),
        onePassFlag(options));
    serve::renderCacheSweep(out, names, study.perf, refs);
    if (int rc = writeTelemetry(options, study.telemetry, err))
        return rc;
    return writeObsOutputs(session, study.telemetry, err);
}

int
cmdIqSweep(const Options &options, std::ostream &out, std::ostream &err)
{
    if (options.positional.empty()) {
        err << "capsim: iq-sweep needs an application (or 'all')\n";
        return 2;
    }
    bool ok = false;
    auto apps = selectApps(options.positional[0], false, err, ok);
    if (!ok)
        return 2;
    uint64_t instrs = options.getU64("instrs", 120000);
    sample::SampleParams sparams;
    bool sampled = false;
    if (!sampleFlag(options, sparams, err, sampled))
        return 2;
    mem::MemConfig mem_config;
    if (!memFlag(options, mem_config, err))
        return 2;
    if (mem_config.isDram()) {
        err << "capsim: note: the IQ-side machine models no memory "
               "hierarchy; --mem=dram is accepted but has no effect "
               "here (docs/MEMORY.md)\n";
    }

    ObsSession session = obsSessionFromFlags(options, err);
    core::AdaptiveIqModel model;

    std::vector<std::string> names;
    for (const trace::AppProfile &app : apps)
        names.push_back(app.name);

    if (sampled) {
        sample::SampledIqStudy study = sample::runSampledIqStudy(
            model, apps, instrs, sparams, jobsFlag(options),
            session.hooks(), onePassFlag(options));
        serve::renderSampledIqSweep(out, names, study.perf, instrs);
        if (int rc = writeTelemetry(options, study.telemetry, err))
            return rc;
        return writeObsOutputs(session, study.telemetry, err);
    }

    core::IqStudy study = core::runIqStudy(model, apps, instrs,
                                           jobsFlag(options),
                                           session.hooks(),
                                           onePassFlag(options));
    serve::renderIqSweep(out, names, study.perf, instrs);
    if (int rc = writeTelemetry(options, study.telemetry, err))
        return rc;
    return writeObsOutputs(session, study.telemetry, err);
}

int
cmdIntervalRun(const Options &options, std::ostream &out,
               std::ostream &err)
{
    if (options.positional.empty()) {
        err << "capsim: interval-run needs an application\n";
        return 2;
    }
    bool ok = false;
    auto apps = selectApps(options.positional[0], false, err, ok);
    if (!ok)
        return 2;
    if (apps.size() != 1) {
        err << "capsim: interval-run needs a single application\n";
        return 2;
    }
    uint64_t instrs = options.getU64("instrs", 120000);
    int entries = static_cast<int>(options.getU64("entries", 32));

    std::vector<int> sizes = core::AdaptiveIqModel::studySizes();
    if (std::find(sizes.begin(), sizes.end(), entries) == sizes.end()) {
        err << "capsim: --entries " << entries
            << " is not a study configuration\n";
        return 2;
    }

    core::IntervalPolicyParams params;
    params.interval_instrs =
        options.getU64("interval", core::kIntervalInstructions);
    params.probe_period = static_cast<int>(options.getU64(
        "probe-period", static_cast<uint64_t>(params.probe_period)));
    params.confidence_needed = static_cast<int>(options.getU64(
        "confidence",
        static_cast<uint64_t>(params.confidence_needed)));
    params.probe_period_max = static_cast<int>(options.getU64(
        "probe-max", static_cast<uint64_t>(params.probe_period_max)));
    params.phase_distance_threshold = options.getDouble(
        "phase-threshold", params.phase_distance_threshold);
    if (params.interval_instrs == 0 || params.probe_period < 2 ||
        params.confidence_needed < 1 ||
        params.probe_period_max < params.probe_period ||
        params.phase_distance_threshold <= 0.0) {
        err << "capsim: invalid interval-controller parameters\n";
        return 2;
    }
    std::string trigger = options.get("trigger", "period");
    if (trigger == "period") {
        params.trigger = core::IntervalTrigger::Period;
    } else if (trigger == "phase") {
        params.trigger = core::IntervalTrigger::PhaseChange;
    } else if (trigger == "hybrid") {
        params.trigger = core::IntervalTrigger::Hybrid;
    } else {
        err << "capsim: --trigger must be period, phase, or hybrid\n";
        return 2;
    }
    mem::MemConfig mem_config;
    if (!memFlag(options, mem_config, err))
        return 2;
    if (mem_config.isDram()) {
        err << "capsim: note: the IQ-side machine models no memory "
               "hierarchy; --mem=dram is accepted but has no effect "
               "here (docs/MEMORY.md)\n";
    }

    core::AdaptiveIqModel model;

    if (options.flags.count("compare-triggers")) {
        // Period vs phase vs hybrid vs oracle on the same run;
        // gap_closed_% = how much of the period-to-oracle TPI gap the
        // mode recovers (the EXPERIMENTS.md phase-trigger table).
        auto runMode = [&](core::IntervalTrigger t) {
            core::IntervalPolicyParams p = params;
            p.trigger = t;
            core::IntervalAdaptiveIq controller(model, p);
            return controller.run(apps[0], instrs, entries);
        };
        core::IntervalRunResult period =
            runMode(core::IntervalTrigger::Period);
        core::IntervalRunResult phase =
            runMode(core::IntervalTrigger::PhaseChange);
        core::IntervalRunResult hybrid =
            runMode(core::IntervalTrigger::Hybrid);
        core::IntervalRunResult oracle = core::runIntervalOracle(
            model, apps[0], instrs, sizes, params.interval_instrs, true,
            params.switch_penalty_cycles, jobsFlag(options), {},
            onePassFlag(options));

        double gap = period.tpi() - oracle.tpi();
        TableWriter table("trigger comparison, " + apps[0].name + ", " +
                          std::to_string(instrs) + " instructions");
        table.setHeader({"mode", "avg_tpi_ns", "total_us", "reconfigs",
                         "committed", "transitions", "snaps",
                         "gap_closed_%"});
        auto row = [&](const char *name,
                       const core::IntervalRunResult &r) {
            double closed =
                gap > 0.0 ? 100.0 * (period.tpi() - r.tpi()) / gap : 0.0;
            table.addRow({Cell(name), Cell(r.tpi(), 4),
                          Cell(r.total_time_ns / 1000.0, 3),
                          Cell(r.reconfigurations),
                          Cell(r.committed_moves),
                          Cell(r.phase_transitions), Cell(r.phase_snaps),
                          Cell(closed, 1)});
        };
        row("period", period);
        row("phase", phase);
        row("hybrid", hybrid);
        row("oracle", oracle);
        table.renderAscii(out);
        return 0;
    }

    ObsSession session = obsSessionFromFlags(options, err);
    core::IntervalAdaptiveIq controller(model, params);
    core::IntervalRunResult result =
        controller.run(apps[0], instrs, entries, session.hooks());

    serve::IntervalSummary summary =
        serve::summarizeIntervalRun(result, entries);
    serve::renderIntervalRun(out, apps[0].name, instrs,
                             params.trigger !=
                                 core::IntervalTrigger::Period,
                             summary);

    if (int rc = writeTelemetry(options, result.telemetry, err))
        return rc;
    return writeObsOutputs(session, result.telemetry, err);
}

int
cmdAnalyzeTrace(const Options &options, std::ostream &out,
                std::ostream &err)
{
    if (options.positional.empty()) {
        err << "capsim: analyze-trace needs a JSONL trace file\n";
        return 2;
    }
    const std::string &path = options.positional[0];
    std::ifstream file(path);
    if (!file) {
        err << "capsim: cannot open '" << path << "'\n";
        return 2;
    }
    obs::DecisionTrace trace;
    std::string error;
    if (!obs::readTraceJsonl(file, trace, error)) {
        err << "capsim: " << path << ": " << error << '\n';
        return 2;
    }

    std::string app_filter = options.get("app");
    std::string lane_filter = options.get("lane");
    uint64_t first = options.getU64("first", 0);
    uint64_t last =
        options.getU64("last", std::numeric_limits<uint64_t>::max());
    uint64_t stride = options.getU64("stride", 1);
    if (stride == 0)
        stride = 1;
    auto selected = [&](const obs::TraceEvent &event) {
        if (!app_filter.empty() && event.app != app_filter)
            return false;
        if (!lane_filter.empty() && event.lane != lane_filter)
            return false;
        return true;
    };

    // --- Summary: event counts by kind, lanes, retired total. ---
    std::set<std::string> lanes;
    for (const obs::TraceEvent &event : trace.events())
        lanes.insert(event.lane);
    TableWriter summary("Trace summary: " + path);
    summary.setHeader({"quantity", "value"});
    summary.addRow({Cell("events"),
                    Cell(static_cast<uint64_t>(trace.size()))});
    for (obs::EventKind kind :
         {obs::EventKind::Interval, obs::EventKind::Decision,
          obs::EventKind::Reconfig, obs::EventKind::ClockChange,
          obs::EventKind::Cell, obs::EventKind::Representative,
          obs::EventKind::Phase}) {
        summary.addRow(
            {Cell(std::string(obs::eventKindName(kind)) + " events"),
             Cell(static_cast<uint64_t>(trace.countKind(kind)))});
    }
    summary.addRow(
        {Cell("lanes"), Cell(static_cast<uint64_t>(lanes.size()))});
    summary.addRow({Cell("interval retired total"),
                    Cell(trace.intervalRetiredTotal())});
    summary.renderAscii(out);

    // --- Per-lane rollup. ---
    struct LaneStats
    {
        uint64_t intervals = 0;
        uint64_t retired = 0;
        uint64_t cycles = 0;
        double sim_ns = 0.0;
        std::vector<double> tpi;
    };
    std::map<std::string, LaneStats> lane_stats;
    for (const obs::TraceEvent &event : trace.events()) {
        if (event.kind != obs::EventKind::Interval &&
            event.kind != obs::EventKind::Cell &&
            event.kind != obs::EventKind::Representative)
            continue;
        LaneStats &stats = lane_stats[event.lane];
        ++stats.intervals;
        stats.retired += event.retired;
        stats.cycles += event.cycles;
        stats.sim_ns += event.duration_ns;
        if (event.tpi_ns > 0.0)
            stats.tpi.push_back(event.tpi_ns);
    }
    // Bucket each lane's per-interval TPI into a FixedHistogram so the
    // rollup reports the same p50/p90/p99 estimator as --metrics-json.
    auto tpiPercentiles = [](const std::vector<double> &tpi) {
        std::array<double, 3> p{0.0, 0.0, 0.0};
        if (tpi.empty())
            return p;
        auto [lo_it, hi_it] = std::minmax_element(tpi.begin(), tpi.end());
        double lo = *lo_it;
        double hi = *hi_it;
        if (!(hi > lo))
            hi = lo + 1e-9; // degenerate: all intervals identical
        obs::FixedHistogram hist(lo, hi, 128);
        for (double t : tpi)
            hist.add(t);
        p = {hist.percentile(50), hist.percentile(90),
             hist.percentile(99)};
        return p;
    };
    TableWriter lane_table("Per-lane rollup");
    lane_table.setHeader({"lane", "intervals", "retired", "ipc",
                          "sim_us", "p50_tpi_ns", "p90_tpi_ns",
                          "p99_tpi_ns"});
    for (const auto &[lane, stats] : lane_stats) {
        std::array<double, 3> p = tpiPercentiles(stats.tpi);
        lane_table.addRow(
            {Cell(lane), Cell(stats.intervals), Cell(stats.retired),
             Cell(stats.cycles
                      ? static_cast<double>(stats.retired) /
                            static_cast<double>(stats.cycles)
                      : 0.0,
                  3),
             Cell(stats.sim_ns / 1000.0, 3),
             stats.tpi.empty() ? Cell("-") : Cell(p[0], 4),
             stats.tpi.empty() ? Cell("-") : Cell(p[1], 4),
             stats.tpi.empty() ? Cell("-") : Cell(p[2], 4)});
    }
    lane_table.renderAscii(out);

    // --- Figure 12/13-style per-interval series. ---
    TableWriter intervals("Per-interval series (Figure 12/13 style)");
    intervals.setHeader({"interval", "lane", "config", "retired", "ipc",
                         "tpi_ns", "ewma_tpi_ns"});
    for (const obs::TraceEvent &event : trace.events()) {
        if (event.kind != obs::EventKind::Interval || !selected(event))
            continue;
        if (event.interval < first || event.interval > last ||
            (event.interval - first) % stride != 0)
            continue;
        intervals.addRow(
            {Cell(event.interval), Cell(event.lane), Cell(event.config),
             Cell(event.retired), Cell(event.ipc, 3),
             Cell(event.tpi_ns, 4),
             event.ewma_tpi_ns < 0.0 ? Cell("-")
                                     : Cell(event.ewma_tpi_ns, 4)});
    }
    intervals.renderAscii(out);

    // --- Controller decisions, if the trace has any. ---
    if (trace.countKind(obs::EventKind::Decision) > 0) {
        TableWriter decisions("Controller decisions");
        decisions.setHeader({"interval", "lane", "decision", "candidate",
                             "chosen", "confidence", "ewma_home",
                             "ewma_candidate"});
        for (const obs::TraceEvent &event : trace.events()) {
            if (event.kind != obs::EventKind::Decision ||
                !selected(event))
                continue;
            if (event.interval < first || event.interval > last)
                continue;
            decisions.addRow(
                {Cell(event.interval), Cell(event.lane),
                 Cell(event.decision), Cell(event.candidate),
                 Cell(event.chosen), Cell(event.confidence),
                 event.ewma_home_tpi_ns < 0.0
                     ? Cell("-")
                     : Cell(event.ewma_home_tpi_ns, 4),
                 event.ewma_candidate_tpi_ns < 0.0
                     ? Cell("-")
                     : Cell(event.ewma_candidate_tpi_ns, 4)});
        }
        decisions.renderAscii(out);
    }

    // --- Sampled representatives, if the trace has any. ---
    if (trace.countKind(obs::EventKind::Representative) > 0) {
        TableWriter reps("Sampled representatives");
        reps.setHeader({"lane", "interval", "cluster", "weight",
                        "warmup", "retired", "tpi_ns"});
        for (const obs::TraceEvent &event : trace.events()) {
            if (event.kind != obs::EventKind::Representative ||
                !selected(event))
                continue;
            if (event.interval < first || event.interval > last)
                continue;
            reps.addRow({Cell(event.lane), Cell(event.interval),
                         Cell(event.cluster), Cell(event.weight),
                         Cell(event.warmup), Cell(event.retired),
                         Cell(event.tpi_ns, 4)});
        }
        reps.renderAscii(out);
    }

    // --- Phase timeline, if the trace has phase transitions. ---
    if (trace.countKind(obs::EventKind::Phase) > 0) {
        TableWriter phases("Phase timeline (online detector)");
        phases.setHeader({"interval", "lane", "at_us", "from", "to",
                          "kind", "config"});
        for (const obs::TraceEvent &event : trace.events()) {
            if (event.kind != obs::EventKind::Phase || !selected(event))
                continue;
            if (event.interval < first || event.interval > last)
                continue;
            phases.addRow({Cell(event.interval), Cell(event.lane),
                           Cell(event.start_ns / 1000.0, 3),
                           event.from_config < 0
                               ? Cell("-")
                               : Cell(event.from_config),
                           Cell(event.to_config), Cell(event.decision),
                           Cell(event.config)});
        }
        phases.renderAscii(out);
    }

    // --- Reconfigurations, if any. ---
    if (trace.countKind(obs::EventKind::Reconfig) > 0) {
        TableWriter reconfigs("Reconfigurations");
        reconfigs.setHeader({"lane", "at_us", "from", "to",
                             "drain_cycles", "penalty_ns"});
        for (const obs::TraceEvent &event : trace.events()) {
            if (event.kind != obs::EventKind::Reconfig ||
                !selected(event))
                continue;
            reconfigs.addRow({Cell(event.lane),
                              Cell(event.start_ns / 1000.0, 3),
                              Cell(event.from_config),
                              Cell(event.to_config),
                              Cell(event.drain_cycles),
                              Cell(event.penalty_ns, 3)});
        }
        reconfigs.renderAscii(out);
    }
    return 0;
}

/** Shared plan printer of sample-profile (both study sides). */
void
printSamplePlan(std::ostream &out, const std::string &side,
                const std::string &app, uint64_t total,
                const sample::SamplePlan &plan)
{
    TableWriter table("sampling plan: " + app + ", " + side + " side, " +
                      std::to_string(total) + " " +
                      (side == "cache" ? "refs" : "instrs"));
    table.setHeader(
        {"cluster", "intervals", "weight", "medoid_ivl", "probe_ivl"});
    // Slot invariant: medoids occupy slots [0, k) in cluster order;
    // probes and cold-prefix intervals follow.
    for (size_t c = 0; c < plan.clustering.clusterCount(); ++c) {
        const sample::Representative &medoid = plan.reps[c];
        std::string probe = "-";
        for (const sample::Representative &rep : plan.reps)
            if (rep.probe && rep.cluster == static_cast<int>(c))
                probe = std::to_string(rep.interval);
        table.addRow({Cell(static_cast<uint64_t>(c)),
                      Cell(plan.clustering.sizes[c]), Cell(medoid.weight),
                      Cell(static_cast<uint64_t>(medoid.interval)),
                      Cell(probe)});
    }
    table.renderAscii(out);
    out << plan.num_intervals << " intervals of " << plan.interval_len
        << ", " << plan.reps.size() << " representatives";
    if (plan.prefix_intervals > 0)
        out << " (" << plan.prefix_intervals
            << " exact cold-prefix intervals)";
    out << ", clustering cost "
        << Cell(plan.clustering.total_cost, 3).str() << "\n";
}

int
cmdSampleProfile(const Options &options, std::ostream &out,
                 std::ostream &err)
{
    if (options.positional.empty()) {
        err << "capsim: sample-profile needs an application\n";
        return 2;
    }
    std::string side = options.get("study", "cache");
    if (side != "cache" && side != "iq") {
        err << "capsim: --study must be 'cache' or 'iq'\n";
        return 2;
    }
    bool ok = false;
    auto apps = selectApps(options.positional[0], side == "cache", err, ok);
    if (!ok || apps.size() != 1) {
        if (ok)
            err << "capsim: sample-profile needs a single application\n";
        return 2;
    }
    sample::SampleParams params = sampleParamsFromKnobs(options);
    mem::MemConfig mem_config;
    if (!memFlag(options, mem_config, err))
        return 2;
    if (mem_config.isDram()) {
        err << "capsim: note: the sampling plan depends only on the "
               "profile; --mem has no effect on sample-profile\n";
    }
    // --host-profile attributes the profile -> cluster pipeline;
    // sample-profile has no telemetry, so only that sink applies.
    ObsSession session = obsSessionFromFlags(options, err);

    if (side == "cache") {
        uint64_t refs = options.getU64("refs", 600000);
        core::AdaptiveCacheModel model;
        sample::CacheSampler sampler(model, apps[0], refs, params);
        printSamplePlan(out, side, apps[0].name, refs, sampler.plan());
    } else {
        uint64_t instrs = options.getU64("instrs", 400000);
        core::AdaptiveIqModel model;
        sample::IqSampler sampler(model, apps[0], instrs, params);
        printSamplePlan(out, side, apps[0].name, instrs, sampler.plan());
    }
    return writeHostProfile(session, err);
}

int
cmdSampleRun(const Options &options, std::ostream &out, std::ostream &err)
{
    if (options.positional.empty()) {
        err << "capsim: sample-run needs an application (or 'all')\n";
        return 2;
    }
    std::string side = options.get("study", "cache");
    if (side != "cache" && side != "iq") {
        err << "capsim: --study must be 'cache' or 'iq'\n";
        return 2;
    }
    bool ok = false;
    auto apps = selectApps(options.positional[0], side == "cache", err, ok);
    if (!ok)
        return 2;
    sample::SampleParams params = sampleParamsFromKnobs(options);
    int jobs = jobsFlag(options);
    bool validate = options.flags.count("validate") > 0;
    bool check = options.flags.count("check") > 0;
    double mae_max = static_cast<double>(options.getU64("mae-max", 2));
    if (check && !validate) {
        err << "capsim: --check requires --validate\n";
        return 2;
    }
    mem::MemConfig mem_config;
    if (!memFlag(options, mem_config, err))
        return 2;
    if (mem_config.isDram()) {
        if (side == "cache") {
            err << "capsim: sample-run --study cache supports "
                   "--mem=flat only (sampled reconstruction assumes "
                   "a position-independent miss cost)\n";
            return 2;
        }
        err << "capsim: note: the IQ-side machine models no memory "
               "hierarchy; --mem=dram is accepted but has no effect "
               "here (docs/MEMORY.md)\n";
    }
    ObsSession session = obsSessionFromFlags(options, err);

    std::string trace_file = options.get("trace-file");
    if (!trace_file.empty()) {
        // Sampled replay of a recorded trace (gen-trace output, or any
        // din-format address trace / uop trace): profile the file,
        // cluster, and replay representatives by seeking to their
        // stored offsets.
        if (apps.size() != 1) {
            err << "capsim: --trace-file needs a single application\n";
            return 2;
        }
        if (validate || options.flags.count("oracle")) {
            err << "capsim: --trace-file does not support --validate "
                   "or --oracle (no synthetic reference run)\n";
            return 2;
        }
        // The file replay runs serially in this thread; give
        // --telemetry-json / --metrics-json one wall-clock cell so
        // the run-health flags work here like everywhere else.
        core::RunTelemetry file_telemetry;
        file_telemetry.jobs = 1;
        file_telemetry.cells.assign(1, {});
        auto file_start = std::chrono::steady_clock::now();
        auto finishFileRun = [&]() {
            file_telemetry.wall_seconds =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - file_start)
                    .count();
            core::CellTelemetry &ct = file_telemetry.cells[0];
            ct.app = apps[0].name;
            ct.config = "trace-file replay";
            ct.sim_seconds = file_telemetry.wall_seconds;
            ct.worker = 0;
            if (int rc = writeTelemetry(options, file_telemetry, err))
                return rc;
            return writeObsOutputs(session, file_telemetry, err);
        };
        if (side == "cache") {
            core::AdaptiveCacheModel model;
            sample::CacheSampler sampler(model, apps[0], trace_file,
                                         params);
            constexpr int kBoundaries = 8;
            std::vector<std::vector<sample::CacheRepMeasurement>> meas;
            if (onePassFlag(options)) {
                meas = sampler.measureAllConfigs(kBoundaries);
            } else {
                for (int k = 1; k <= kBoundaries; ++k)
                    meas.push_back(sampler.measureConfig(k));
            }
            std::vector<sample::SampledCachePerf> perf;
            size_t best = 0;
            for (int k = 1; k <= kBoundaries; ++k) {
                perf.push_back(sampler.reconstruct(k, meas[k - 1]));
                if (perf.back().perf.tpi_ns < perf[best].perf.tpi_ns)
                    best = static_cast<size_t>(k - 1);
            }
            TableWriter file_table("file-backed sampled sweep, " +
                                   apps[0].name + ", " + trace_file);
            file_table.setHeader({"l1_size", "tpi_ns", "ci_lo", "ci_hi",
                                  "l1_miss", "global_miss"});
            for (size_t c = 0; c < perf.size(); ++c) {
                file_table.addRow(
                    {Cell(std::to_string(8 * (c + 1)) + "KB"),
                     Cell(perf[c].perf.tpi_ns, 3),
                     Cell(perf[c].tpi_lo_ns, 3),
                     Cell(perf[c].tpi_hi_ns, 3),
                     Cell(perf[c].perf.l1_miss_ratio, 4),
                     Cell(perf[c].perf.global_miss_ratio, 4)});
            }
            file_table.renderAscii(out);
            out << sampler.profile().total_refs << " references in "
                << sampler.plan().num_intervals << " intervals, "
                << sampler.repCount() << " representatives, best "
                << 8 * (best + 1) << "KB\n";
            return finishFileRun();
        }
        // IQ side: the file is a uop trace (gen-trace --study iq /
        // writeUopTraceFile output).
        core::AdaptiveIqModel model;
        sample::IqSampler sampler(model, apps[0], trace_file, params);
        std::vector<int> sizes = core::AdaptiveIqModel::studySizes();
        std::vector<std::vector<sample::IqRepMeasurement>> meas;
        if (onePassFlag(options)) {
            meas = sampler.measureAllConfigs();
        } else {
            for (int entries : sizes) {
                std::vector<sample::IqRepMeasurement> per;
                for (size_t r = 0; r < sampler.repCount(); ++r)
                    per.push_back(sampler.measureRep(entries, r));
                meas.push_back(std::move(per));
            }
        }
        std::vector<sample::SampledIqPerf> perf;
        size_t best = 0;
        for (size_t c = 0; c < sizes.size(); ++c) {
            perf.push_back(sampler.reconstruct(sizes[c], meas[c]));
            if (perf.back().perf.tpi_ns < perf[best].perf.tpi_ns)
                best = c;
        }
        TableWriter file_table("file-backed sampled sweep, " +
                               apps[0].name + ", " + trace_file);
        file_table.setHeader(
            {"entries", "tpi_ns", "ci_lo", "ci_hi", "ipc"});
        for (size_t c = 0; c < perf.size(); ++c) {
            file_table.addRow({Cell(sizes[c]),
                               Cell(perf[c].perf.tpi_ns, 3),
                               Cell(perf[c].tpi_lo_ns, 3),
                               Cell(perf[c].tpi_hi_ns, 3),
                               Cell(perf[c].perf.ipc, 3)});
        }
        file_table.renderAscii(out);
        out << sampler.profile().total_instrs << " instructions in "
            << sampler.plan().num_intervals << " intervals, "
            << sampler.repCount() << " representatives, best "
            << sizes[best] << " entries\n";
        return finishFileRun();
    }

    if (options.flags.count("oracle")) {
        if (side != "iq" || apps.size() != 1) {
            err << "capsim: --oracle needs --study iq and a single "
                   "application\n";
            return 2;
        }
        uint64_t instrs = options.getU64("instrs", 400000);
        core::AdaptiveIqModel model;
        core::IntervalRunResult result = sample::runSampledIntervalOracle(
            model, apps[0], instrs, core::AdaptiveIqModel::studySizes(),
            params, true, core::kClockSwitchPenaltyCycles, jobs,
            session.hooks(), onePassFlag(options));
        TableWriter table("sampled interval oracle, " + apps[0].name +
                          ", " + std::to_string(instrs) + " instructions");
        table.setHeader({"quantity", "value"});
        table.addRow({Cell("instructions"), Cell(result.instructions)});
        table.addRow({Cell("intervals"),
                      Cell(static_cast<uint64_t>(
                          result.config_trace.size()))});
        table.addRow({Cell("avg TPI (ns)"), Cell(result.tpi(), 4)});
        table.addRow({Cell("total time (us)"),
                      Cell(result.total_time_ns / 1000.0, 3)});
        table.addRow(
            {Cell("reconfigurations"), Cell(result.reconfigurations)});
        table.renderAscii(out);
        if (int rc = writeTelemetry(options, result.telemetry, err))
            return rc;
        return writeObsOutputs(session, result.telemetry, err);
    }

    // Per-app validation columns; `failures` drives the --check verdict.
    TableWriter table((validate ? "sampled vs full, " : "sampled sweep, ") +
                      side + std::string(" side"));
    if (validate)
        table.setHeader({"app", "best", "tpi_ns", "mae_%", "ci_brackets",
                         "argmin_kept", "speedup_x"});
    else
        table.setHeader({"app", "best", "tpi_ns", "ci_lo", "ci_hi",
                         "speedup_x"});
    int failures = 0;
    core::RunTelemetry telemetry;

    auto report = [&](const std::string &app, const std::string &best,
                      double tpi, double lo, double hi, double full_best,
                      double mae, bool argmin_kept, double speedup) {
        if (!validate) {
            table.addRow({Cell(app), Cell(best), Cell(tpi, 3),
                          Cell(lo, 3), Cell(hi, 3), Cell(speedup, 1)});
            return;
        }
        bool brackets = lo <= full_best && full_best <= hi;
        if (mae > mae_max || !brackets)
            ++failures;
        table.addRow({Cell(app), Cell(best), Cell(tpi, 3), Cell(mae, 2),
                      Cell(brackets ? "yes" : "no"),
                      Cell(argmin_kept ? "yes" : "no"),
                      Cell(speedup, 1)});
    };

    if (side == "cache") {
        uint64_t refs = options.getU64("refs", 600000);
        core::AdaptiveCacheModel model;
        bool one_pass = onePassFlag(options);
        sample::SampledCacheStudy study = sample::runSampledCacheStudy(
            model, apps, refs, params, 8, jobs, session.hooks(),
            one_pass);
        telemetry = study.telemetry;
        core::CacheStudy full;
        if (validate)
            full = core::runCacheStudy(model, apps, refs, 8, jobs, {},
                                       one_pass);
        for (size_t a = 0; a < apps.size(); ++a) {
            size_t best = study.selection.per_app_best[a];
            const sample::SampledCachePerf &sp = study.perf[a][best];
            double mae = 0.0;
            bool argmin_kept = true;
            double full_best = 0.0;
            uint64_t simulated = 0;
            for (size_t c = 0; c < study.perf[a].size(); ++c)
                simulated += study.perf[a][c].simulated_refs;
            if (validate) {
                size_t fb = full.selection.per_app_best[a];
                argmin_kept = best == fb;
                full_best = full.perf[a][best].tpi_ns;
                for (size_t c = 0; c < study.perf[a].size(); ++c)
                    mae += std::abs(study.perf[a][c].perf.tpi_ns -
                                    full.perf[a][c].tpi_ns) /
                           full.perf[a][c].tpi_ns;
                mae = 100.0 * mae /
                      static_cast<double>(study.perf[a].size());
            }
            double speedup =
                static_cast<double>(refs * study.perf[a].size()) /
                static_cast<double>(simulated);
            report(apps[a].name,
                   std::to_string(8 * (best + 1)) + "KB",
                   sp.perf.tpi_ns, sp.tpi_lo_ns, sp.tpi_hi_ns, full_best,
                   mae, argmin_kept, speedup);
        }
    } else {
        uint64_t instrs = options.getU64("instrs", 400000);
        core::AdaptiveIqModel model;
        sample::SampledIqStudy study = sample::runSampledIqStudy(
            model, apps, instrs, params, jobs, session.hooks(),
            onePassFlag(options));
        telemetry = study.telemetry;
        core::IqStudy full;
        if (validate)
            full = core::runIqStudy(model, apps, instrs, jobs);
        for (size_t a = 0; a < apps.size(); ++a) {
            size_t best = study.selection.per_app_best[a];
            const sample::SampledIqPerf &sp = study.perf[a][best];
            double mae = 0.0;
            bool argmin_kept = true;
            double full_best = 0.0;
            uint64_t simulated = 0;
            for (size_t c = 0; c < study.perf[a].size(); ++c)
                simulated += study.perf[a][c].simulated_instrs;
            if (validate) {
                size_t fb = full.selection.per_app_best[a];
                argmin_kept = best == fb;
                full_best = full.perf[a][best].tpi_ns;
                for (size_t c = 0; c < study.perf[a].size(); ++c)
                    mae += std::abs(study.perf[a][c].perf.tpi_ns -
                                    full.perf[a][c].tpi_ns) /
                           full.perf[a][c].tpi_ns;
                mae = 100.0 * mae /
                      static_cast<double>(study.perf[a].size());
            }
            double speedup =
                static_cast<double>(instrs * study.perf[a].size()) /
                static_cast<double>(simulated);
            report(apps[a].name, std::to_string(sp.perf.entries),
                   sp.perf.tpi_ns, sp.tpi_lo_ns, sp.tpi_hi_ns, full_best,
                   mae, argmin_kept, speedup);
        }
    }
    table.renderAscii(out);
    if (check)
        out << (failures ? "check: FAIL (" + std::to_string(failures) +
                               " app(s) out of tolerance)\n"
                         : "check: ok\n");
    if (int rc = writeTelemetry(options, telemetry, err))
        return rc;
    if (int rc = writeObsOutputs(session, telemetry, err))
        return rc;
    return check && failures ? 1 : 0;
}

int
cmdGenTrace(const Options &options, std::ostream &out, std::ostream &err)
{
    if (options.positional.size() < 2) {
        err << "capsim: gen-trace needs an application and a path\n";
        return 2;
    }
    std::string side = options.get("study", "cache");
    if (side != "cache" && side != "iq") {
        err << "capsim: unknown --study " << side << '\n';
        return 2;
    }
    bool ok = false;
    auto apps = selectApps(options.positional[0], side == "cache", err, ok);
    if (!ok || apps.size() != 1) {
        if (ok)
            err << "capsim: gen-trace needs a single application\n";
        return 2;
    }
    if (side == "iq") {
        uint64_t instrs = options.getU64("instrs", 100000);
        ooo::InstructionStream stream(apps[0].ilp, apps[0].seed);
        uint64_t written =
            ooo::writeUopTraceFile(options.positional[1], stream, instrs);
        out << "wrote " << written << " uops of " << apps[0].name
            << " to " << options.positional[1] << '\n';
        return 0;
    }
    uint64_t refs = options.getU64("refs", 100000);
    trace::SyntheticTraceSource source(apps[0].cache, apps[0].seed, refs);
    uint64_t written =
        trace::writeTraceFile(options.positional[1], source, refs);
    out << "wrote " << written << " records of " << apps[0].name
        << " to " << options.positional[1] << '\n';
    return 0;
}

int
cmdAnalyze(const Options &options, std::ostream &out, std::ostream &err)
{
    if (options.positional.empty()) {
        err << "capsim: analyze needs a trace file\n";
        return 2;
    }
    uint64_t limit = options.getU64("limit", 0);
    uint64_t block = options.getU64("block", trace::kBlockBytes);

    trace::FileTraceSource source(options.positional[0]);
    trace::TraceCharacter character =
        trace::analyzeTrace(source, limit, block);

    TableWriter table("Trace character: " + options.positional[0]);
    table.setHeader({"quantity", "value"});
    table.addRow({Cell("references"), Cell(character.refs)});
    table.addRow({Cell("write fraction"),
                  Cell(character.writeFraction(), 3)});
    table.addRow({Cell("footprint (blocks)"),
                  Cell(character.footprint_blocks)});
    table.addRow({Cell("footprint (KB)"),
                  Cell(character.footprint_blocks * block / 1024)});
    table.addRow({Cell("cold references"), Cell(character.cold_refs)});
    table.renderAscii(out);

    TableWriter curve("Fully-associative LRU miss-ratio curve");
    curve.setHeader({"capacity", "miss_ratio"});
    for (uint64_t kb : {4ull, 8ull, 16ull, 32ull, 64ull, 128ull, 256ull}) {
        curve.addRow({Cell(std::to_string(kb) + "KB"),
                      Cell(character.missRatioAtBytes(kib(kb)), 4)});
    }
    curve.renderAscii(out);
    return 0;
}

int
cmdServe(const Options &options, std::ostream &out, std::ostream &err)
{
    serve::ServerConfig config;
    config.queue_capacity =
        static_cast<size_t>(options.getU64("queue", 16));
    config.cache_capacity =
        static_cast<size_t>(options.getU64("cache", 4096));
    config.spill_path = options.get("spill");
    uint64_t jobs = options.getU64("jobs", 0);
    config.jobs = static_cast<int>(jobs);
    config.heartbeats = options.flags.count("heartbeats") > 0;
    config.heartbeat_period_s =
        options.getDouble("heartbeat-period", 1.0);
    if (config.queue_capacity == 0 || config.heartbeat_period_s <= 0.0) {
        err << "capsim: invalid serve parameters\n";
        return 2;
    }

    std::string socket_path = options.get("socket");
    bool stdio = options.flags.count("stdio") > 0;
    if (socket_path.empty() == !stdio) {
        err << "capsim: serve needs exactly one of --socket PATH or "
               "--stdio\n";
        return 2;
    }

    serve::StudyServer server(config);
    if (stdio)
        return serve::serveStdio(server, std::cin, out);
    err << "capsim: serving on " << socket_path << "\n";
    return serve::serveSocket(server, socket_path, err);
}

int
cmdClient(const Options &options, std::ostream &out, std::ostream &err)
{
    if (options.positional.empty()) {
        err << "capsim: client needs a study file\n";
        return 2;
    }
    serve::ClientOptions copts;
    copts.socket_path = options.get("socket");
    copts.study_path = options.positional[0];
    copts.events_path = options.get("events");
    copts.request_shutdown = options.flags.count("shutdown") > 0;
    if (copts.socket_path.empty()) {
        err << "capsim: client needs --socket PATH\n";
        return 2;
    }
    return serve::runClient(copts, out, err);
}

} // namespace

int
runCommand(const std::vector<std::string> &args, std::ostream &out,
           std::ostream &err)
{
    if (args.empty())
        return cmdHelp(out);
    const std::string &command = args[0];
    Options options =
        parseArgs(std::vector<std::string>(args.begin() + 1, args.end()));

    if (command == "help" || command == "--help")
        return cmdHelp(out);
    if (command == "apps")
        return cmdApps(out);
    if (command == "timing")
        return cmdTiming(out);
    if (command == "cache-sweep")
        return cmdCacheSweep(options, out, err);
    if (command == "iq-sweep")
        return cmdIqSweep(options, out, err);
    if (command == "interval-run")
        return cmdIntervalRun(options, out, err);
    if (command == "sample-profile")
        return cmdSampleProfile(options, out, err);
    if (command == "sample-run")
        return cmdSampleRun(options, out, err);
    if (command == "analyze-trace")
        return cmdAnalyzeTrace(options, out, err);
    if (command == "gen-trace")
        return cmdGenTrace(options, out, err);
    if (command == "analyze")
        return cmdAnalyze(options, out, err);
    if (command == "serve")
        return cmdServe(options, out, err);
    if (command == "client")
        return cmdClient(options, out, err);

    err << "capsim: unknown command '" << command << "'\n"
        << "known commands: apps, timing, cache-sweep, iq-sweep, "
           "sample-profile,\n"
           "  sample-run, interval-run, analyze-trace, gen-trace, "
           "analyze, serve,\n"
           "  client, help\n"
           "(try 'capsim help')\n";
    return kUnknownCommandExit;
}

} // namespace cap::cli
