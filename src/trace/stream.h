/**
 * @file
 * Synthetic trace source: turns a CacheBehavior into a deterministic
 * stream of data-cache references.
 */

#ifndef CAPSIM_TRACE_STREAM_H
#define CAPSIM_TRACE_STREAM_H

#include <memory>
#include <vector>

#include "trace/patterns.h"
#include "trace/profile.h"
#include "trace/record.h"
#include "util/rng.h"

namespace cap::trace {

/**
 * Generates the reference stream of one application.  Components of
 * the profile mix are laid out in disjoint address regions (1 MiB
 * aligned) and selected per-reference by weight.  Equal (profile,
 * seed) pairs generate identical streams.
 */
class SyntheticTraceSource : public TraceSource
{
  public:
    /**
     * @param behavior The application's data-reference character.
     * @param seed Application seed (use AppProfile::seed).
     * @param limit Number of references to produce before reporting
     *              exhaustion; 0 means unbounded.
     */
    SyntheticTraceSource(const CacheBehavior &behavior, uint64_t seed,
                         uint64_t limit);

    bool next(TraceRecord &record) override;

    /**
     * Batched generation: identical records and end state to @p max
     * next() calls, with the limit test and phase bookkeeping hoisted
     * out of the per-reference loop.
     */
    uint64_t nextBatch(TraceRecord *out, uint64_t max) override;

    /** References produced so far. */
    uint64_t produced() const { return produced_; }

    /** Phase index active for the next reference (test support). */
    size_t currentPhase() const { return phase_; }

    /**
     * A saved generator position: phase schedule state, reference
     * count, the Rng state, and every pattern's internal cursor.
     * Restoring a cursor into a source built from the same
     * (behavior, seed, limit) resumes the exact reference sequence --
     * the checkpoint primitive of the sampled-simulation replayer
     * (src/sample/).
     */
    struct Cursor
    {
        size_t phase = 0;
        uint64_t phase_left = 0;
        uint64_t produced = 0;
        Rng::State rng_state{};
        /** Per-pattern state words, in phase-then-pattern order. */
        std::vector<uint64_t> pattern_state;
    };

    /** Snapshot the generator position. */
    Cursor saveCursor() const;

    /**
     * Restore a position saved from a source with the same
     * (behavior, seed) construction; fatal on a shape mismatch.
     */
    void restoreCursor(const Cursor &cursor);

  private:
    struct Phase
    {
        std::vector<std::unique_ptr<Pattern>> patterns;
        std::vector<double> weights;
        uint64_t length_refs;
    };

    std::vector<Phase> phases_;
    size_t phase_ = 0;
    uint64_t phase_left_ = 0;
    double write_fraction_;
    uint64_t limit_;
    uint64_t produced_ = 0;
    Rng rng_;
};

} // namespace cap::trace

#endif // CAPSIM_TRACE_STREAM_H
