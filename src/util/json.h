/**
 * @file
 * Shared JSON helpers: one escaping routine, a compact streaming
 * writer, and a small recursive-descent parser.
 *
 * Every JSON emitter in the tree (Cell::jsonStr behind
 * TableWriter::renderJson, the decision-trace JSONL, the progress
 * heartbeats, the study-server protocol, the result-cache spill file)
 * escapes strings through json::escape(), so a string round-trips
 * identically no matter which emitter wrote it and which reader
 * parses it back.
 *
 * The Writer produces compact JSON ("{\"a\":1}") -- the wire format of
 * the server protocol and the heartbeat events.  The parser accepts
 * any single JSON value (the server protocol is one object per line)
 * with a fixed nesting-depth guard so untrusted input cannot recurse
 * the stack away.
 */

#ifndef CAPSIM_UTIL_JSON_H
#define CAPSIM_UTIL_JSON_H

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace cap::json {

/**
 * Escape @p text for inclusion inside a JSON string literal: `"`,
 * `\`, newline and tab get two-character escapes, every other control
 * character becomes \u00xx.  (The canonical escaping rule shared by
 * all emitters; see file comment.)
 */
std::string escape(const std::string &text);

/** escape() wrapped in double quotes: a complete string literal. */
std::string quote(const std::string &text);

/**
 * Write `, "key": <raw>` -- the field idiom of the decision-trace and
 * metrics emitters.  @p raw must already be valid JSON (a Cell's
 * jsonStr(), a number, ...).
 */
void rawField(std::ostream &os, const char *key, const std::string &raw);

/**
 * Streaming compact-JSON writer.  Commas are inserted automatically;
 * misuse (a value where a key is required, unbalanced end calls) is a
 * programming error and asserts.
 *
 *   json::Writer w(os);
 *   w.beginObject().key("event").value("ack").key("id").value(7u)
 *    .endObject();          // {"event":"ack","id":7}
 */
class Writer
{
  public:
    explicit Writer(std::ostream &os) : os_(os) {}

    Writer &beginObject();
    Writer &endObject();
    Writer &beginArray();
    Writer &endArray();

    /** Next member's name (objects only). */
    Writer &key(const std::string &name);

    Writer &value(const std::string &text);
    Writer &value(const char *text);
    Writer &value(bool flag);
    Writer &value(uint64_t n);
    Writer &value(int64_t n);
    Writer &value(int n) { return value(static_cast<int64_t>(n)); }
    /** Fixed-point double: snprintf("%.*f"); non-finite emits null. */
    Writer &value(double x, int precision);
    /** Emit @p raw verbatim (must be valid JSON). */
    Writer &rawValue(const std::string &raw);

  private:
    struct Frame
    {
        bool object = false;
        bool pending_key = false;
        size_t members = 0;
    };

    void preValue();

    std::ostream &os_;
    std::vector<Frame> stack_;
};

/** Parsed JSON value (object keys keep their order of appearance). */
struct Value
{
    enum class Type { Null, Bool, Number, String, Array, Object };

    Type type = Type::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<Value> array;
    std::vector<std::pair<std::string, Value>> object;

    bool isObject() const { return type == Type::Object; }
    bool isArray() const { return type == Type::Array; }
    bool isString() const { return type == Type::String; }
    bool isNumber() const { return type == Type::Number; }

    /** Object member by name, or nullptr (first match wins). */
    const Value *find(const std::string &key) const;

    /** Member as a string; @p fallback when absent or not a string. */
    std::string stringOr(const std::string &key,
                         const std::string &fallback = "") const;

    /** Member as a double; @p fallback when absent or not a number. */
    double numberOr(const std::string &key, double fallback) const;

    /**
     * Member as a u64: a JSON number (truncated; exact below 2^53) or
     * a decimal string -- the spill/value format stores 64-bit fields
     * as strings so they survive the double round-trip bit-exactly.
     */
    uint64_t u64Or(const std::string &key, uint64_t fallback) const;

    /** Member as a bool; @p fallback when absent or not a bool. */
    bool boolOr(const std::string &key, bool fallback) const;
};

/**
 * Parse @p text as one JSON value (trailing whitespace allowed,
 * trailing garbage is an error).  On failure returns false and sets
 * @p error.  Nesting beyond 64 levels is rejected.
 */
bool parse(const std::string &text, Value &out, std::string &error);

/** Parse a full-string decimal u64; false on any non-digit residue. */
bool parseU64(const std::string &text, uint64_t &out);

/** Serialize a double's bit pattern as a decimal string (bit-exact
 *  round-trip through text, independent of printf precision). */
std::string doubleBits(double x);

/** Inverse of doubleBits(); false when @p text is not a valid u64. */
bool doubleFromBits(const std::string &text, double &out);

} // namespace cap::json

#endif // CAPSIM_UTIL_JSON_H
