/**
 * @file
 * capsim: command-line entry point (see src/cli/cli.h).
 *
 * The sweep commands fan their (app, config) simulations across
 * worker threads (--jobs N, 0 = all cores) and can dump per-cell
 * execution telemetry (--telemetry-json PATH).  Observability --
 * structured metrics, JSONL decision traces, Chrome traces -- hangs
 * off --trace / --chrome-trace / --metrics-json and the
 * `analyze-trace` command (docs/OBSERVABILITY.md); `capsim help`
 * lists every flag.  CAPSIM_TRACE / CAPSIM_METRICS arm the same
 * sinks from the environment.
 */

#include <iostream>
#include <string>
#include <vector>

#include "cli/cli.h"
#include "obs/hooks.h"

int
main(int argc, char **argv)
{
    cap::obs::initGlobalFromEnv();
    std::vector<std::string> args(argv + 1, argv + argc);
    int rc = cap::cli::runCommand(args, std::cout, std::cerr);
    cap::obs::flushGlobal();
    return rc;
}
