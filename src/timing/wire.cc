#include "wire.h"

#include <cmath>
#include <limits>

#include "util/status.h"

namespace cap::timing {

namespace {

// Fixed driver for the unbuffered case: a minimum repeater.  Sizing
// the driver up would trade its delay against the wire-dominated
// quadratic term; a minimum driver matches the paper's curves.
constexpr double kUnbufferedDriverSizing = 1.0;

} // namespace

Nanoseconds
WireModel::unbufferedDelay(double length_mm) const
{
    capAssert(length_mm >= 0.0, "negative wire length");
    // Unbuffered delays are wire-dominated and evaluated at the
    // reference generation: this is why Figure 1 shows one unbuffered
    // curve for all feature sizes.
    const Technology &ref = Technology::um250();
    double c_wire = ref.wireCapacitancePerMm() * length_mm;  // nF
    double r_wire = ref.wireResistancePerMm() * length_mm;   // ohm
    double r_drv = ref.bufferResistance() / kUnbufferedDriverSizing;
    return 0.7 * r_drv * c_wire + 0.4 * r_wire * c_wire;
}

RepeaterPlan
WireModel::optimalRepeaters(double length_mm) const
{
    capAssert(length_mm >= 0.0, "negative wire length");
    RepeaterPlan plan{1, 1.0, tech_->bufferFixedOverhead()};
    if (length_mm == 0.0)
        return plan;

    double r_wire = tech_->wireResistancePerMm() * length_mm; // ohm
    double c_wire = tech_->wireCapacitancePerMm() * length_mm; // nF
    double rb = tech_->bufferResistance();
    double cb = tech_->bufferCapacitance();

    double k_opt = std::sqrt((0.4 * r_wire * c_wire) / (0.7 * rb * cb));
    plan.stages = std::max(1, static_cast<int>(std::lround(k_opt)));
    plan.sizing = std::sqrt((rb * c_wire) / (r_wire * cb));
    plan.delay = tech_->bufferFixedOverhead() +
                 2.5 * std::sqrt(rb * cb * r_wire * c_wire);
    return plan;
}

Nanoseconds
WireModel::bufferedDelay(double length_mm) const
{
    return optimalRepeaters(length_mm).delay;
}

Nanoseconds
WireModel::segmentDelay(double length_mm, int segments) const
{
    capAssert(segments > 0, "segment count must be positive");
    // Repeaters electrically isolate segments, so each contributes an
    // equal share of the line's marginal (per-length) delay.
    Nanoseconds total = bufferedDelay(length_mm);
    Nanoseconds marginal = total - tech_->bufferFixedOverhead();
    return marginal / static_cast<double>(segments);
}

double
WireModel::crossoverLength(double limit_mm) const
{
    capAssert(limit_mm > 0.0, "crossover search needs a positive limit");
    // Bisection on f(L) = unbuffered(L) - buffered(L); f is
    // monotonically increasing (quadratic minus linear) once positive.
    double lo = 0.0;
    double hi = limit_mm;
    if (unbufferedDelay(hi) <= bufferedDelay(hi))
        return std::numeric_limits<double>::infinity();
    for (int iter = 0; iter < 64; ++iter) {
        double mid = 0.5 * (lo + hi);
        if (unbufferedDelay(mid) > bufferedDelay(mid))
            hi = mid;
        else
            lo = mid;
    }
    return 0.5 * (lo + hi);
}

} // namespace cap::timing
