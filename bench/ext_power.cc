/**
 * @file
 * Extension bench: performance/power design points of a CAP
 * (Section 4.1) quantified across the suite.
 *
 * For every application, compares the performance-optimal adaptive
 * configuration against the energy-per-instruction-optimal one and
 * the dedicated low-power mode (minimum structures, slowest clock).
 */

#include <iostream>

#include "bench_common.h"
#include "core/adaptive_iq.h"
#include "core/machine.h"
#include "core/power_model.h"
#include "trace/workloads.h"

int
main()
{
    using namespace cap;
    using namespace cap::bench;

    banner("Extension: performance/power design points (Section 4.1)",
           "one CAP implementation spans server to laptop operating "
           "points: the EPI-optimal configuration is usually smaller "
           "than the TPI-optimal one, and the low-power mode cuts power "
           "~8x for ~2x TPI");

    core::AdaptiveIqModel model;
    core::PowerModel power;
    uint64_t instrs = iqInstrs() / 2;
    double fastest = model.cycleNs(core::IqMachine::kMinEntries);
    double slowest = model.cycleNs(core::IqMachine::kMaxEntries);

    TableWriter table("Per-application operating points "
                      "(power/EPI normalized)");
    table.setHeader({"app", "perf_cfg", "perf_tpi", "perf_power",
                     "epi_cfg", "epi_tpi", "epi_power", "lowpower_tpi",
                     "lowpower_power"});

    double perf_power_mean = 0.0, low_power_mean = 0.0;
    auto apps = trace::iqStudyApps();
    for (const trace::AppProfile &app : apps) {
        int best_tpi_cfg = 16;
        double best_tpi = 0.0;
        int best_epi_cfg = 16;
        double best_epi = 0.0, best_epi_tpi = 0.0, best_epi_power = 0.0;
        double ipc16 = 0.0;
        for (int entries : core::AdaptiveIqModel::studySizes()) {
            core::IqPerf perf = model.evaluate(app, entries, instrs);
            if (entries == 16)
                ipc16 = perf.ipc;
            core::PowerEstimate estimate = power.estimate(
                entries, core::IqMachine::kMaxEntries,
                model.cycleNs(entries), fastest);
            double epi =
                power.energyPerInstruction(estimate, perf.tpi_ns);
            if (best_tpi == 0.0 || perf.tpi_ns < best_tpi) {
                best_tpi = perf.tpi_ns;
                best_tpi_cfg = entries;
            }
            if (best_epi == 0.0 || epi < best_epi) {
                best_epi = epi;
                best_epi_cfg = entries;
                best_epi_tpi = perf.tpi_ns;
                best_epi_power = estimate.total();
            }
        }
        core::PowerEstimate perf_estimate = power.estimate(
            best_tpi_cfg, core::IqMachine::kMaxEntries,
            model.cycleNs(best_tpi_cfg), fastest);
        // Low-power: 16 entries at the slowest table clock.
        core::PowerEstimate low_estimate = power.estimate(
            16, core::IqMachine::kMaxEntries, slowest, fastest);
        double low_tpi = slowest / ipc16;

        perf_power_mean += perf_estimate.total();
        low_power_mean += low_estimate.total();
        table.addRow({Cell(app.name), Cell(best_tpi_cfg),
                      Cell(best_tpi, 3), Cell(perf_estimate.total(), 3),
                      Cell(best_epi_cfg), Cell(best_epi_tpi, 3),
                      Cell(best_epi_power, 3), Cell(low_tpi, 3),
                      Cell(low_estimate.total(), 3)});
    }
    emit(table);
    std::cout << "mean power: performance mode "
              << perf_power_mean / static_cast<double>(apps.size())
              << ", low-power mode "
              << low_power_mean / static_cast<double>(apps.size())
              << " (normalized)\n";
    return 0;
}
