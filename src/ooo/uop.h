/**
 * @file
 * Micro-operation record consumed by the out-of-order core model.
 *
 * With perfect branch prediction, perfect caches and plentiful
 * functional units (the paper's instruction-queue methodology), the
 * only properties of an instruction that affect IPC are its register
 * dependencies and its execution latency -- which is exactly what a
 * MicroOp carries.
 */

#ifndef CAPSIM_OOO_UOP_H
#define CAPSIM_OOO_UOP_H

#include <cstdint>

namespace cap::ooo {

/** Maximum dependency distance the generators produce. */
constexpr uint32_t kMaxDepDistance = 256;

/** One dynamic instruction. */
struct MicroOp
{
    /**
     * Distance (in dynamic instructions) back to the producer of the
     * first source operand; 0 means no register source.
     */
    uint32_t src1_dist = 0;
    /** Distance to the second source's producer; 0 means none. */
    uint32_t src2_dist = 0;
    /** Execution latency in cycles (>= 1). */
    uint32_t latency = 1;
};

} // namespace cap::ooo

#endif // CAPSIM_OOO_UOP_H
