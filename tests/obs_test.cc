/**
 * @file
 * Tests of the observability layer: the counter registry (including
 * its parallel merge discipline), the decision-trace event stream and
 * its two sink formats, the JSONL reader, and the CLI round trip
 * through `--trace` / `analyze-trace` / `--metrics-json`.
 */

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "cli/cli.h"
#include "core/adaptive_cache.h"
#include "core/adaptive_iq.h"
#include "core/experiment.h"
#include "core/interval_controller.h"
#include "core/machine.h"
#include "core/telemetry.h"
#include "obs/decision_trace.h"
#include "obs/hooks.h"
#include "obs/progress.h"
#include "obs/registry.h"
#include "obs/span_profiler.h"
#include "obs/trace_reader.h"
#include "trace/workloads.h"
#include "util/parallel.h"

namespace cap {
namespace {

std::string
tempPath(const std::string &name)
{
    return testing::TempDir() + name;
}

// ---------------------------------------------------------------------
// CounterRegistry
// ---------------------------------------------------------------------

TEST(ObsRegistryTest, FindOrCreateAndLookup)
{
    obs::CounterRegistry registry;
    registry.counter("core.cycles").add(5);
    registry.counter("core.cycles").add(7);
    registry.gauge("iq.ewma").set(1.5);
    obs::FixedHistogram &hist =
        registry.histogram("core.occupancy", 0.0, 10.0, 5);
    hist.add(1.0);
    hist.add(9.5);
    hist.add(-3.0);  // clamped into the low bin
    hist.add(42.0);  // clamped into the high bin

    EXPECT_EQ(registry.counterValue("core.cycles"), 12u);
    EXPECT_DOUBLE_EQ(registry.gaugeValue("iq.ewma"), 1.5);
    EXPECT_EQ(registry.counterValue("never.registered"), 0u);
    EXPECT_EQ(registry.findHistogram("never.registered"), nullptr);

    const obs::FixedHistogram *found =
        registry.findHistogram("core.occupancy");
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->totalCount(), 4u);
    EXPECT_EQ(found->binValue(0), 2u);
    EXPECT_EQ(found->binValue(4), 2u);
    EXPECT_EQ(registry.counterCount(), 1u);
    EXPECT_EQ(registry.gaugeCount(), 1u);
    EXPECT_EQ(registry.histogramCount(), 1u);
}

TEST(ObsRegistryTest, MergeSumsCountersAndBins)
{
    obs::CounterRegistry a;
    obs::CounterRegistry b;
    a.counter("n").add(3);
    b.counter("n").add(4);
    b.counter("only_b").add(1);
    a.gauge("g").set(1.0);
    b.gauge("g").set(2.0);
    a.histogram("h", 0.0, 4.0, 4).add(0.5);
    b.histogram("h", 0.0, 4.0, 4).add(0.5);
    b.histogram("h", 0.0, 4.0, 4).add(3.5);

    a.merge(b);
    EXPECT_EQ(a.counterValue("n"), 7u);
    EXPECT_EQ(a.counterValue("only_b"), 1u);
    EXPECT_DOUBLE_EQ(a.gaugeValue("g"), 2.0);  // last writer wins
    const obs::FixedHistogram *h = a.findHistogram("h");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->totalCount(), 3u);
    EXPECT_EQ(h->binValue(0), 2u);
    EXPECT_EQ(h->binValue(3), 1u);
}

TEST(ObsRegistryTest, RenderJsonFieldsIsDeterministicNameOrder)
{
    obs::CounterRegistry registry;
    registry.counter("z.last").add(1);
    registry.counter("a.first").add(2);
    registry.gauge("m.mid").set(0.5);
    registry.histogram("h.one", 0.0, 1.0, 2).add(0.25);

    std::ostringstream os;
    registry.renderJsonFields(os, 0);
    std::string json = os.str();
    EXPECT_LT(json.find("a.first"), json.find("z.last"));
    EXPECT_NE(json.find("\"counters\""), std::string::npos);
    EXPECT_NE(json.find("\"gauges\""), std::string::npos);
    EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

// ---------------------------------------------------------------------
// Parallel merge discipline (runs under TSan in CI)
// ---------------------------------------------------------------------

TEST(ObsParallelTest, PerCellRegistriesMergeDeterministically)
{
    constexpr size_t kCells = 64;
    for (int jobs : {1, 4}) {
        std::vector<obs::CounterRegistry> cells(kCells);
        parallelFor(jobs, kCells, [&](size_t i) {
            cells[i].counter("cell.events").add(i + 1);
            cells[i].histogram("cell.values", 0.0, 64.0, 8)
                .add(static_cast<double>(i));
        });
        obs::CounterRegistry merged;
        for (const obs::CounterRegistry &cell : cells)
            merged.merge(cell);
        // sum 1..64
        EXPECT_EQ(merged.counterValue("cell.events"), 64u * 65u / 2u);
        const obs::FixedHistogram *h = merged.findHistogram("cell.values");
        ASSERT_NE(h, nullptr);
        EXPECT_EQ(h->totalCount(), kCells);
        for (size_t bin = 0; bin < h->binCount(); ++bin)
            EXPECT_EQ(h->binValue(bin), 8u);
    }
}

TEST(ObsParallelTest, StudyTraceIsIdenticalForEveryJobCount)
{
    std::vector<trace::AppProfile> apps = {trace::workloadSuite()[0],
                                           trace::workloadSuite()[1]};
    core::AdaptiveIqModel model;

    auto traced = [&](int jobs) {
        obs::DecisionTrace trace;
        obs::CounterRegistry registry;
        obs::Hooks hooks{&trace, &registry};
        core::IqStudy study =
            core::runIqStudy(model, apps, 6000, jobs, hooks);
        std::ostringstream jsonl;
        trace.writeJsonl(jsonl);
        std::ostringstream metrics;
        registry.renderJsonFields(metrics, 0);
        return std::make_pair(jsonl.str(), metrics.str());
    };

    auto serial = traced(1);
    auto parallel = traced(4);
    EXPECT_EQ(serial.first, parallel.first);
    EXPECT_EQ(serial.second, parallel.second);
}

// ---------------------------------------------------------------------
// DecisionTrace accounting
// ---------------------------------------------------------------------

TEST(ObsTraceTest, IntervalControllerRecordCountAndRetiredSum)
{
    // Not a multiple of the interval length: the final partial
    // interval must still produce a record and credit its retires.
    constexpr uint64_t kInstrs = 10 * core::kIntervalInstructions + 777;
    const trace::AppProfile &app = trace::workloadSuite()[0];
    core::AdaptiveIqModel model;
    core::IntervalAdaptiveIq controller(model, {});

    obs::DecisionTrace trace;
    obs::CounterRegistry registry;
    obs::Hooks hooks{&trace, &registry};
    core::IntervalRunResult result =
        controller.run(app, kInstrs, 32, hooks);

    EXPECT_EQ(trace.countKind(obs::EventKind::Interval),
              result.config_trace.size());
    EXPECT_EQ(trace.intervalRetiredTotal(), result.instructions);
    EXPECT_EQ(registry.counterValue("interval.reconfigurations"),
              static_cast<uint64_t>(result.reconfigurations));
    EXPECT_EQ(registry.counterValue("interval.committed_moves"),
              static_cast<uint64_t>(result.committed_moves));
    // One Reconfig record per physical reconfiguration.
    EXPECT_EQ(trace.countKind(obs::EventKind::Reconfig),
              static_cast<size_t>(result.reconfigurations));
    // The core's own metrics came along.
    EXPECT_GT(registry.counterValue("core.cycles"), 0u);
}

TEST(ObsTraceTest, InstrumentationDoesNotPerturbTheRun)
{
    constexpr uint64_t kInstrs = 8 * core::kIntervalInstructions + 123;
    const trace::AppProfile &app = trace::workloadSuite()[2];
    core::AdaptiveIqModel model;
    core::IntervalAdaptiveIq controller(model, {});

    core::IntervalRunResult plain = controller.run(app, kInstrs, 32);

    obs::DecisionTrace trace;
    obs::CounterRegistry registry;
    obs::Hooks hooks{&trace, &registry};
    core::IntervalRunResult observed =
        controller.run(app, kInstrs, 32, hooks);

    EXPECT_EQ(plain.instructions, observed.instructions);
    EXPECT_EQ(plain.total_time_ns, observed.total_time_ns);
    EXPECT_EQ(plain.reconfigurations, observed.reconfigurations);
    EXPECT_EQ(plain.committed_moves, observed.committed_moves);
    EXPECT_EQ(plain.config_trace, observed.config_trace);
}

TEST(ObsTraceTest, EvaluateObservedMatchesEvaluate)
{
    const trace::AppProfile &app = trace::workloadSuite()[3];
    core::AdaptiveIqModel model;
    core::IqPerf plain = model.evaluate(app, 48, 25000);

    obs::DecisionTrace trace;
    core::IqPerf observed = model.evaluateObserved(
        app, 48, 25000, core::kIntervalInstructions, &trace, nullptr);
    EXPECT_EQ(plain.instructions, observed.instructions);
    EXPECT_EQ(plain.cycles, observed.cycles);
    EXPECT_DOUBLE_EQ(plain.ipc, observed.ipc);
    EXPECT_DOUBLE_EQ(plain.tpi_ns, observed.tpi_ns);
    EXPECT_EQ(trace.intervalRetiredTotal(), observed.instructions);
    // ceil(25000 / 2000) = 13 interval records.
    EXPECT_EQ(trace.countKind(obs::EventKind::Interval), 13u);
}

TEST(ObsTraceTest, OracleEmitsWinnerIntervalsAndSwitches)
{
    const trace::AppProfile &app = trace::workloadSuite()[0];
    core::AdaptiveIqModel model;
    std::vector<int> candidates = {16, 64};
    constexpr uint64_t kInstrs = 11000;

    obs::DecisionTrace trace;
    obs::Hooks hooks{&trace, nullptr};
    core::IntervalRunResult result = core::runIntervalOracle(
        model, app, kInstrs, candidates, core::kIntervalInstructions,
        true, core::kClockSwitchPenaltyCycles, 2, hooks);

    EXPECT_EQ(trace.countKind(obs::EventKind::Interval),
              result.config_trace.size());
    EXPECT_EQ(trace.intervalRetiredTotal(), result.instructions);
    EXPECT_EQ(trace.countKind(obs::EventKind::Reconfig),
              static_cast<size_t>(result.reconfigurations));
}

// ---------------------------------------------------------------------
// Sinks and the JSONL reader
// ---------------------------------------------------------------------

TEST(ObsSinkTest, JsonlRoundTripPreservesEveryEvent)
{
    const trace::AppProfile &app = trace::workloadSuite()[1];
    core::AdaptiveIqModel model;
    core::IntervalAdaptiveIq controller(model, {});
    obs::DecisionTrace trace;
    obs::Hooks hooks{&trace, nullptr};
    controller.run(app, 30000, 32, hooks);
    ASSERT_GT(trace.size(), 0u);

    std::stringstream jsonl;
    trace.writeJsonl(jsonl);
    obs::DecisionTrace loaded;
    std::string error;
    ASSERT_TRUE(obs::readTraceJsonl(jsonl, loaded, error)) << error;
    ASSERT_EQ(loaded.size(), trace.size());
    EXPECT_EQ(loaded.intervalRetiredTotal(), trace.intervalRetiredTotal());
    for (size_t i = 0; i < trace.size(); ++i) {
        const obs::TraceEvent &a = trace.events()[i];
        const obs::TraceEvent &b = loaded.events()[i];
        EXPECT_EQ(a.kind, b.kind) << "event " << i;
        EXPECT_EQ(a.lane, b.lane);
        EXPECT_EQ(a.app, b.app);
        EXPECT_EQ(a.config, b.config);
        EXPECT_EQ(a.interval, b.interval);
        EXPECT_EQ(a.retired, b.retired);
        EXPECT_EQ(a.cycles, b.cycles);
        EXPECT_EQ(a.decision, b.decision);
        EXPECT_EQ(a.candidate, b.candidate);
        EXPECT_EQ(a.chosen, b.chosen);
        EXPECT_EQ(a.confidence, b.confidence);
        EXPECT_EQ(a.from_config, b.from_config);
        EXPECT_EQ(a.to_config, b.to_config);
        EXPECT_EQ(a.drain_cycles, b.drain_cycles);
        EXPECT_NEAR(a.start_ns, b.start_ns, 1e-6);
        EXPECT_NEAR(a.duration_ns, b.duration_ns, 1e-6);
        EXPECT_NEAR(a.ipc, b.ipc, 1e-9);
        EXPECT_NEAR(a.tpi_ns, b.tpi_ns, 1e-9);
        EXPECT_NEAR(a.ewma_tpi_ns, b.ewma_tpi_ns, 1e-6);
    }
}

TEST(ObsSinkTest, ReaderRejectsGarbage)
{
    obs::DecisionTrace loaded;
    std::string error;
    std::istringstream not_json("this is not json\n");
    EXPECT_FALSE(obs::readTraceJsonl(not_json, loaded, error));
    EXPECT_FALSE(error.empty());

    std::istringstream bad_type("{\"type\": \"martian\"}\n");
    error.clear();
    EXPECT_FALSE(obs::readTraceJsonl(bad_type, loaded, error));
    EXPECT_FALSE(error.empty());
}

TEST(ObsSinkTest, ChromeTraceHasRequiredStructure)
{
    const trace::AppProfile &app = trace::workloadSuite()[0];
    core::AdaptiveIqModel model;
    core::IntervalAdaptiveIq controller(model, {});
    obs::DecisionTrace trace;
    obs::Hooks hooks{&trace, nullptr};
    controller.run(app, 30000, 32, hooks);

    std::ostringstream os;
    trace.writeChromeTrace(os);
    std::string json = os.str();
    EXPECT_EQ(json.rfind("{\"displayTimeUnit\"", 0), 0u)
        << "must open the enclosing trace object";
    EXPECT_NE(json.find("\"traceEvents\": ["), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"M\""), std::string::npos)
        << "metadata (thread_name) events";
    EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos)
        << "complete (duration) events for intervals";
    EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
    // Balanced braces / brackets (cheap structural sanity).
    int braces = 0;
    int brackets = 0;
    bool in_string = false;
    for (size_t i = 0; i < json.size(); ++i) {
        char ch = json[i];
        if (in_string) {
            if (ch == '\\')
                ++i;
            else if (ch == '"')
                in_string = false;
            continue;
        }
        if (ch == '"')
            in_string = true;
        else if (ch == '{')
            ++braces;
        else if (ch == '}')
            --braces;
        else if (ch == '[')
            ++brackets;
        else if (ch == ']')
            --brackets;
    }
    EXPECT_EQ(braces, 0);
    EXPECT_EQ(brackets, 0);
}

// ---------------------------------------------------------------------
// RunTelemetry emission (escaping, div-by-zero, worker breakdown)
// ---------------------------------------------------------------------

TEST(ObsTelemetryTest, JsonEscapesStringsAndGuardsZeroWall)
{
    core::RunTelemetry telemetry;
    telemetry.jobs = 1;
    telemetry.wall_seconds = 0.0;  // cells_per_second must emit 0.0
    telemetry.cells.push_back(
        {"evil\"app\\name", "cfg\nwith\tcontrol", 0.0, 0});

    std::ostringstream os;
    telemetry.writeJson(os);
    std::string json = os.str();
    EXPECT_NE(json.find("\"cells_per_second\": 0.000000"),
              std::string::npos)
        << json;
    EXPECT_NE(json.find("evil\\\"app\\\\name"), std::string::npos) << json;
    EXPECT_NE(json.find("cfg\\nwith\\tcontrol"), std::string::npos) << json;
}

TEST(ObsTelemetryTest, WorkerBreakdownAndImbalance)
{
    core::RunTelemetry telemetry;
    telemetry.jobs = 2;
    telemetry.wall_seconds = 2.0;
    telemetry.cells.push_back({"a", "c0", 3.0, 0});
    telemetry.cells.push_back({"a", "c1", 1.0, 1});
    telemetry.cells.push_back({"b", "c0", 2.0, 0});

    std::vector<core::WorkerLoad> loads = telemetry.workerLoads();
    ASSERT_EQ(loads.size(), 2u);
    EXPECT_EQ(loads[0].cells, 2u);
    EXPECT_DOUBLE_EQ(loads[0].sim_seconds, 5.0);
    EXPECT_EQ(loads[1].cells, 1u);
    EXPECT_DOUBLE_EQ(loads[1].sim_seconds, 1.0);
    // busiest 5.0 over mean 3.0
    EXPECT_NEAR(telemetry.workerImbalance(), 5.0 / 3.0, 1e-12);

    std::ostringstream os;
    telemetry.writeJson(os);
    std::string json = os.str();
    EXPECT_NE(json.find("\"workers\": ["), std::string::npos) << json;
    EXPECT_NE(json.find("\"worker_imbalance\""), std::string::npos) << json;
    EXPECT_NE(json.find("\"worker\": 1"), std::string::npos) << json;
}

TEST(ObsTelemetryTest, FoldPopulatesRegistry)
{
    core::RunTelemetry telemetry;
    telemetry.jobs = 3;
    telemetry.wall_seconds = 2.0;
    telemetry.reconfigurations = 9;
    telemetry.cells.assign(6, {"a", "c", 1.0, 0});

    obs::CounterRegistry registry;
    telemetry.fold(registry);
    EXPECT_EQ(registry.counterValue("telemetry.jobs"), 3u);
    EXPECT_EQ(registry.counterValue("telemetry.cells"), 6u);
    EXPECT_EQ(registry.counterValue("telemetry.reconfigurations"), 9u);
    EXPECT_DOUBLE_EQ(registry.gaugeValue("telemetry.cells_per_second"),
                     3.0);
}

// ---------------------------------------------------------------------
// CLI round trip: --trace / --metrics-json / analyze-trace
// ---------------------------------------------------------------------

TEST(ObsCliTest, IqSweepTraceRoundTripThroughAnalyzeTrace)
{
    std::string jsonl = tempPath("obs_cli_trace.jsonl");
    std::string chrome = jsonl + ".chrome.json";
    std::string metrics = tempPath("obs_cli_metrics.json");

    std::ostringstream out;
    std::ostringstream err;
    int rc = cli::runCommand({"iq-sweep", "li", "--instrs", "9000",
                              "--trace", jsonl, "--metrics-json", metrics},
                             out, err);
    ASSERT_EQ(rc, 0) << err.str();

    // The JSONL loads back, and its interval records account for every
    // retired instruction of the run: 8 configs x 9000 instructions.
    std::ifstream file(jsonl);
    ASSERT_TRUE(file.is_open());
    obs::DecisionTrace loaded;
    std::string error;
    ASSERT_TRUE(obs::readTraceJsonl(file, loaded, error)) << error;
    uint64_t configs =
        static_cast<uint64_t>(core::AdaptiveIqModel::studySizes().size());
    EXPECT_EQ(loaded.intervalRetiredTotal(), configs * 9000u);

    // The Chrome companion exists and opens the trace object.
    std::ifstream chrome_file(chrome);
    ASSERT_TRUE(chrome_file.is_open());
    std::string head;
    std::getline(chrome_file, head);
    EXPECT_EQ(head.rfind("{\"displayTimeUnit\"", 0), 0u);
    EXPECT_NE(head.find("\"traceEvents\": ["), std::string::npos);

    // The metrics document carries registry + telemetry fields.
    std::ifstream metrics_file(metrics);
    ASSERT_TRUE(metrics_file.is_open());
    std::stringstream metrics_text;
    metrics_text << metrics_file.rdbuf();
    EXPECT_NE(metrics_text.str().find("\"counters\""), std::string::npos);
    EXPECT_NE(metrics_text.str().find("core.cycles"), std::string::npos);
    EXPECT_NE(metrics_text.str().find("\"workers\""), std::string::npos);

    // analyze-trace renders the per-interval tables from the file.
    std::ostringstream analysis;
    rc = cli::runCommand({"analyze-trace", jsonl, "--app", "li"},
                         analysis, err);
    EXPECT_EQ(rc, 0) << err.str();
    EXPECT_NE(analysis.str().find("Per-interval series"),
              std::string::npos);
    EXPECT_NE(analysis.str().find("Per-lane rollup"), std::string::npos);
    EXPECT_NE(analysis.str().find("interval retired total"),
              std::string::npos);

    std::remove(jsonl.c_str());
    std::remove(chrome.c_str());
    std::remove(metrics.c_str());
}

TEST(ObsCliTest, IntervalRunCommandTracesDecisions)
{
    std::string jsonl = tempPath("obs_cli_interval.jsonl");
    std::ostringstream out;
    std::ostringstream err;
    int rc = cli::runCommand({"interval-run", "li", "--instrs", "50000",
                              "--entries", "32", "--trace", jsonl},
                             out, err);
    ASSERT_EQ(rc, 0) << err.str();
    EXPECT_NE(out.str().find("interval controller"), std::string::npos);

    std::ifstream file(jsonl);
    ASSERT_TRUE(file.is_open());
    obs::DecisionTrace loaded;
    std::string error;
    ASSERT_TRUE(obs::readTraceJsonl(file, loaded, error)) << error;
    EXPECT_GT(loaded.countKind(obs::EventKind::Interval), 0u);
    EXPECT_GT(loaded.countKind(obs::EventKind::Decision), 0u);

    std::ostringstream analysis;
    rc = cli::runCommand({"analyze-trace", jsonl}, analysis, err);
    EXPECT_EQ(rc, 0) << err.str();
    EXPECT_NE(analysis.str().find("Controller decisions"),
              std::string::npos);
    std::remove(jsonl.c_str());
}

TEST(ObsCliTest, AnalyzeTraceRejectsMissingAndMalformedFiles)
{
    std::ostringstream out;
    std::ostringstream err;
    EXPECT_EQ(cli::runCommand({"analyze-trace"}, out, err), 2);
    EXPECT_EQ(
        cli::runCommand({"analyze-trace", tempPath("obs_no_such.jsonl")},
                        out, err),
        2);

    std::string bad = tempPath("obs_bad.jsonl");
    std::ofstream(bad) << "{\"type\": \"interval\", \"retired\": }\n";
    EXPECT_EQ(cli::runCommand({"analyze-trace", bad}, out, err), 2);
    std::remove(bad.c_str());
}

TEST(ObsCliTest, SweepWithoutObsFlagsWritesNothing)
{
    // Inert hooks: the sweep still works and no obs files appear.
    std::ostringstream out;
    std::ostringstream err;
    int rc =
        cli::runCommand({"iq-sweep", "li", "--instrs", "6000"}, out, err);
    EXPECT_EQ(rc, 0) << err.str();
    EXPECT_NE(out.str().find("avg TPI"), std::string::npos);
}

// ---------------------------------------------------------------------
// FixedHistogram percentiles
// ---------------------------------------------------------------------

TEST(ObsRegistryTest, PercentileInterpolatesAcrossUniformBuckets)
{
    obs::FixedHistogram hist(0.0, 100.0, 100);
    for (int i = 0; i < 100; ++i)
        hist.add(i + 0.5); // one sample per unit-wide bucket
    EXPECT_DOUBLE_EQ(hist.percentile(0), 0.0);
    EXPECT_NEAR(hist.percentile(50), 50.0, 1.0);
    EXPECT_NEAR(hist.percentile(90), 90.0, 1.0);
    EXPECT_NEAR(hist.percentile(99), 99.0, 1.0);
    EXPECT_DOUBLE_EQ(hist.percentile(100), 100.0);
    // Out-of-range p clamps instead of extrapolating.
    EXPECT_DOUBLE_EQ(hist.percentile(-5), hist.percentile(0));
    EXPECT_DOUBLE_EQ(hist.percentile(400), hist.percentile(100));
}

TEST(ObsRegistryTest, PercentileOfEmptyAndDegenerateHistograms)
{
    obs::FixedHistogram empty(1.0, 2.0, 4);
    EXPECT_DOUBLE_EQ(empty.percentile(50), 1.0);

    // Every sample in one bucket: percentiles stay inside it.
    obs::FixedHistogram point(0.0, 8.0, 8);
    point.add(3.5, 1000);
    for (double p : {1.0, 50.0, 99.0}) {
        EXPECT_GE(point.percentile(p), 3.0);
        EXPECT_LE(point.percentile(p), 4.0);
    }
}

TEST(ObsRegistryTest, HistogramJsonCarriesPercentiles)
{
    obs::CounterRegistry registry;
    obs::FixedHistogram &hist =
        registry.histogram("core.occupancy", 0.0, 10.0, 10);
    for (int i = 0; i < 10; ++i)
        hist.add(i + 0.5);
    std::ostringstream os;
    registry.renderJsonFields(os, 0);
    std::string json = os.str();
    EXPECT_NE(json.find("\"p50\": "), std::string::npos) << json;
    EXPECT_NE(json.find("\"p90\": "), std::string::npos) << json;
    EXPECT_NE(json.find("\"p99\": "), std::string::npos) << json;
}

// ---------------------------------------------------------------------
// Host-side span profiler (runs under TSan in CI)
// ---------------------------------------------------------------------

TEST(HostProfileTest, DisarmedSpansRecordNothing)
{
    obs::SpanProfiler profiler; // never armed
    {
        CAPSIM_SPAN("never.recorded");
    }
    EXPECT_EQ(obs::SpanProfiler::active(), nullptr);
    EXPECT_EQ(profiler.spanCount(), 0u);
    EXPECT_EQ(profiler.laneCount(), 0);
}

TEST(HostProfileTest, NestingComputesDepthSelfTimeAndStageTable)
{
    obs::SpanProfiler profiler;
    profiler.arm();
    {
        CAPSIM_SPAN("outer");
        {
            CAPSIM_SPAN("inner");
        }
        {
            CAPSIM_SPAN("inner");
        }
    }
    profiler.disarm();
    EXPECT_EQ(obs::SpanProfiler::active(), nullptr);

    ASSERT_EQ(profiler.spanCount(), 3u);
    const std::vector<obs::SpanRecord> &lane = profiler.lane(0);
    // Completion order: both inner spans close before the outer.
    EXPECT_STREQ(lane[0].name, "inner");
    EXPECT_EQ(lane[0].depth, 1);
    EXPECT_STREQ(lane[1].name, "inner");
    EXPECT_STREQ(lane[2].name, "outer");
    EXPECT_EQ(lane[2].depth, 0);
    // The outer's self time excludes both children exactly.
    uint64_t inner_total = lane[0].dur_ns + lane[1].dur_ns;
    EXPECT_GE(lane[2].dur_ns, inner_total);
    EXPECT_EQ(lane[2].self_ns, lane[2].dur_ns - inner_total);
    EXPECT_GE(lane[2].start_ns + lane[2].dur_ns,
              lane[1].start_ns + lane[1].dur_ns);

    std::vector<obs::StageRow> rows = profiler.stageTable();
    ASSERT_EQ(rows.size(), 2u);
    uint64_t calls = 0;
    double share = 0.0;
    for (const obs::StageRow &row : rows) {
        calls += row.calls;
        share += row.share_pct;
        EXPECT_GE(row.total_s, row.self_s);
    }
    EXPECT_EQ(calls, 3u);
    EXPECT_NEAR(share, 100.0, 1e-6);
}

TEST(HostProfileTest, DisarmMidSpanStaysBalanced)
{
    obs::SpanProfiler profiler;
    profiler.arm();
    {
        CAPSIM_SPAN("outlives.the.arm");
        profiler.disarm();
        // The scoped span cached the profiler at construction; its
        // close must still land there instead of being dropped.
    }
    EXPECT_EQ(profiler.spanCount(), 1u);
    EXPECT_STREQ(profiler.lane(0)[0].name, "outlives.the.arm");
}

TEST(HostProfileTest, WorkerLanesRecordIndependentlyUnderParallelFor)
{
    obs::SpanProfiler profiler;
    profiler.arm();
    constexpr size_t kCells = 48;
    std::atomic<uint64_t> sum{0};
    {
        CAPSIM_SPAN("test.fanout");
        parallelFor(4, kCells, [&](size_t i) {
            CAPSIM_SPAN("test.cell");
            sum.fetch_add(i + 1, std::memory_order_relaxed);
        });
    }
    profiler.disarm();
    EXPECT_EQ(sum.load(), kCells * (kCells + 1) / 2);

    EXPECT_EQ(profiler.spanCount(), kCells + 1);
    size_t cell_records = 0;
    for (int l = 0; l < profiler.laneCount(); ++l) {
        for (const obs::SpanRecord &r : profiler.lane(l)) {
            if (std::string(r.name) == "test.cell")
                ++cell_records;
        }
    }
    EXPECT_EQ(cell_records, kCells);

    std::vector<obs::StageRow> rows = profiler.stageTable();
    ASSERT_EQ(rows.size(), 2u);
    for (const obs::StageRow &row : rows) {
        if (row.name == "test.cell")
            EXPECT_EQ(row.calls, kCells);
        else
            EXPECT_EQ(row.name, "test.fanout");
    }
}

TEST(HostProfileTest, ChromeTraceHasWorkerLanesAndNestedSpans)
{
    obs::SpanProfiler profiler;
    profiler.arm();
    {
        CAPSIM_SPAN("chrome.outer");
        CAPSIM_SPAN("chrome.inner");
    }
    profiler.disarm();

    std::ostringstream os;
    profiler.writeChromeTrace(os);
    std::string json = os.str();
    EXPECT_NE(json.find("\"process_name\""), std::string::npos) << json;
    EXPECT_NE(json.find("worker 0"), std::string::npos) << json;
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos) << json;
    EXPECT_NE(json.find("chrome.outer"), std::string::npos) << json;
    EXPECT_NE(json.find("\"depth\":1"), std::string::npos)
        << "the inner span is nested one level down: " << json;

    std::ostringstream table;
    profiler.writeStageTable(table);
    EXPECT_NE(table.str().find("stage attribution"), std::string::npos);
    EXPECT_NE(table.str().find("chrome.inner"), std::string::npos);
}

TEST(HostProfileTest, StageTableMergeIsDeterministicAcrossJobCounts)
{
    // Same work on 1 and 4 workers: wall-clock timings differ, but the
    // aggregated structure (names, order domain, call counts) must not.
    auto runOnce = [](int jobs) {
        obs::SpanProfiler profiler;
        profiler.arm();
        {
            CAPSIM_SPAN("det.fanout");
            parallelFor(jobs, 32, [&](size_t) {
                CAPSIM_SPAN("det.cell");
            });
        }
        profiler.disarm();
        std::vector<std::pair<std::string, uint64_t>> shape;
        for (const obs::StageRow &row : profiler.stageTable())
            shape.emplace_back(row.name, row.calls);
        std::sort(shape.begin(), shape.end());
        return shape;
    };
    EXPECT_EQ(runOnce(1), runOnce(4));
}

// ---------------------------------------------------------------------
// Progress meter (runs under TSan in CI)
// ---------------------------------------------------------------------

TEST(ProgressTest, FinalJsonlReportAccountsEveryCell)
{
    std::ostringstream os;
    {
        // Period far beyond the test: only endRun's final report fires.
        obs::ProgressMeter meter(os, /*jsonl=*/true, /*period_s=*/3600.0);
        meter.beginRun("unit-test", 3, 2);
        meter.noteCellDone(0, 1000000);
        meter.noteCellDone(1, 2000000);
        meter.noteCellDone(0, 500000);
        meter.endRun();
        EXPECT_GE(meter.reportCount(), 1u);
    }
    std::string text = os.str();
    EXPECT_NE(text.find("\"event\":\"progress_final\""), std::string::npos)
        << text;
    EXPECT_NE(text.find("\"label\":\"unit-test\""), std::string::npos);
    EXPECT_NE(text.find("\"done\":3"), std::string::npos) << text;
    EXPECT_NE(text.find("\"total\":3"), std::string::npos);
    EXPECT_NE(text.find("\"worker\":1"), std::string::npos)
        << "per-worker utilization breakdown";
}

TEST(ProgressTest, TextHeartbeatNamesTheRun)
{
    std::ostringstream os;
    {
        obs::ProgressMeter meter(os, false, 3600.0);
        meter.beginRun("text-run", 2, 1);
        meter.noteCellDone(0, 1000);
        meter.noteCellDone(0, 1000);
        meter.endRun();
    }
    EXPECT_NE(os.str().find("text-run: 2/2 cells"), std::string::npos)
        << os.str();
}

TEST(ProgressTest, MeterIsReusableAcrossConsecutiveRuns)
{
    std::ostringstream os;
    obs::ProgressMeter meter(os, true, 3600.0);
    meter.beginRun("first", 1, 1);
    meter.noteCellDone(0, 10);
    meter.endRun();
    meter.beginRun("second", 2, 1);
    meter.noteCellDone(0, 10);
    meter.noteCellDone(0, 10);
    meter.endRun();
    std::string text = os.str();
    EXPECT_NE(text.find("\"label\":\"first\""), std::string::npos);
    EXPECT_NE(text.find("\"label\":\"second\""), std::string::npos);
    // The second run's counters started fresh.
    EXPECT_NE(text.find("\"done\":2,\"total\":2"), std::string::npos)
        << text;
}

TEST(ProgressTest, OutOfRangeWorkerIndicesAreClampedNotLost)
{
    std::ostringstream os;
    {
        obs::ProgressMeter meter(os, true, 3600.0);
        meter.beginRun("clamped", 2, 1);
        meter.noteCellDone(-3, 10);
        meter.noteCellDone(obs::ProgressMeter::kMaxWorkers + 7, 10);
        meter.endRun();
    }
    EXPECT_NE(os.str().find("\"done\":2"), std::string::npos) << os.str();
}

TEST(ProgressTest, ObservingWorkersDoesNotPerturbTheRun)
{
    // The differential the docs promise: a watched parallel fan-out
    // produces bit-identical results to an unwatched one.
    auto runOnce = [](obs::ProgressMeter *meter) {
        std::vector<uint64_t> out(64);
        parallelFor(4, out.size(), [&](size_t i) {
            out[i] = i * 2654435761u;
            if (meter)
                meter->noteCellDone(currentWorkerId(), 100);
        });
        return out;
    };
    std::ostringstream os;
    obs::ProgressMeter meter(os, true, 3600.0);
    meter.beginRun("diff", 64, 4);
    std::vector<uint64_t> watched = runOnce(&meter);
    meter.endRun();
    std::vector<uint64_t> plain = runOnce(nullptr);
    EXPECT_EQ(watched, plain);
}

// ---------------------------------------------------------------------
// RunTelemetry edge cases and pool instrumentation
// ---------------------------------------------------------------------

TEST(ObsTelemetryTest, WorkerLoadsWithIdleWorkers)
{
    core::RunTelemetry telemetry;
    telemetry.jobs = 4;
    telemetry.wall_seconds = 1.0;
    telemetry.cells.push_back({"a", "c0", 1.0, 0}); // workers 1-3 idle

    std::vector<core::WorkerLoad> loads = telemetry.workerLoads();
    ASSERT_EQ(loads.size(), 4u);
    EXPECT_EQ(loads[0].cells, 1u);
    for (size_t w = 1; w < 4; ++w) {
        EXPECT_EQ(loads[w].cells, 0u);
        EXPECT_DOUBLE_EQ(loads[w].sim_seconds, 0.0);
    }
    // busiest 1.0 over mean 0.25
    EXPECT_NEAR(telemetry.workerImbalance(), 4.0, 1e-12);
}

TEST(ObsTelemetryTest, ZeroCellRunIsWellDefined)
{
    core::RunTelemetry telemetry;
    telemetry.jobs = 2;
    telemetry.wall_seconds = 0.5;

    EXPECT_EQ(telemetry.workerLoads().size(), 2u);
    EXPECT_DOUBLE_EQ(telemetry.workerImbalance(), 0.0);
    EXPECT_DOUBLE_EQ(telemetry.cellsPerSecond(), 0.0);

    std::ostringstream os;
    telemetry.writeJson(os);
    EXPECT_NE(os.str().find("\"cells\": 0"), std::string::npos)
        << os.str();
}

TEST(ObsTelemetryTest, CellOnAWorkerBeyondJobsGrowsTheBreakdown)
{
    // A cell attributed past the declared job count (e.g. a recorded
    // trace merged from elsewhere) must widen the table, not crash.
    core::RunTelemetry telemetry;
    telemetry.jobs = 1;
    telemetry.cells.push_back({"a", "c0", 1.0, 5});
    std::vector<core::WorkerLoad> loads = telemetry.workerLoads();
    ASSERT_EQ(loads.size(), 6u);
    EXPECT_EQ(loads[5].cells, 1u);
}

TEST(ObsTelemetryTest, RecordedPoolStatsAppearInJsonAndFold)
{
    ThreadPool pool(3);
    parallelFor(pool, 8, [](size_t) {});
    core::RunTelemetry telemetry;
    telemetry.jobs = 3;
    telemetry.wall_seconds = 1.0;
    telemetry.recordPool(pool);

    ASSERT_TRUE(telemetry.pool_recorded);
    ASSERT_EQ(telemetry.pool.workers.size(), 3u);
    uint64_t tasks = 0;
    uint64_t indices = 0;
    for (const ThreadPool::Stats::Worker &w : telemetry.pool.workers) {
        tasks += w.tasks;
        indices += w.indices;
    }
    EXPECT_EQ(indices, 8u) << "every parallelFor index claimed once";
    EXPECT_EQ(tasks, telemetry.pool.submitted)
        << "every submitted task ran";
    EXPECT_GE(telemetry.pool.max_queue_depth, 1u);

    std::ostringstream os;
    telemetry.writeJson(os);
    std::string json = os.str();
    EXPECT_NE(json.find("\"pool\": {"), std::string::npos) << json;
    EXPECT_NE(json.find("\"pool_workers\": ["), std::string::npos);
    EXPECT_NE(json.find("\"max_queue_depth\""), std::string::npos);

    obs::CounterRegistry registry;
    telemetry.fold(registry);
    EXPECT_EQ(registry.counterValue("telemetry.pool_submitted"),
              telemetry.pool.submitted);
}

TEST(ObsTelemetryTest, UnrecordedPoolStaysOutOfTheJson)
{
    core::RunTelemetry telemetry;
    telemetry.jobs = 1;
    std::ostringstream os;
    telemetry.writeJson(os);
    EXPECT_EQ(os.str().find("\"pool\""), std::string::npos);
}

// ---------------------------------------------------------------------
// CLI differentials: --host-profile / --progress must not perturb
// results (the run-health flags only observe host time)
// ---------------------------------------------------------------------

TEST(HostProfileTest, CliStudyIsBitIdenticalWithProfilingOnAndOff)
{
    for (int jobs : {1, 4}) {
        std::string chrome = tempPath("hp_diff_chrome.json");
        std::string progress = tempPath("hp_diff_progress.jsonl");

        // One run per instrumentation state; stdout (the study tables)
        // and the decision trace must match byte for byte.
        auto runStudy = [&](bool instrumented) {
            std::string jsonl = tempPath("hp_diff_trace.jsonl");
            std::vector<std::string> args = {
                "iq-sweep",  "li",
                "--instrs",  "9000",
                "--jobs",    std::to_string(jobs),
                "--trace",   jsonl};
            if (instrumented) {
                args.push_back("--host-profile=" + chrome);
                args.push_back("--progress=" + progress);
            }
            std::ostringstream out;
            std::ostringstream err;
            EXPECT_EQ(cli::runCommand(args, out, err), 0) << err.str();
            std::stringstream trace_text;
            trace_text << std::ifstream(jsonl).rdbuf();
            std::remove(jsonl.c_str());
            std::remove((jsonl + ".chrome.json").c_str());
            return out.str() + "\n--trace--\n" + trace_text.str();
        };

        std::string plain = runStudy(false);
        std::string profiled = runStudy(true);
        EXPECT_EQ(plain, profiled) << "jobs=" << jobs;

        // The instrumented run left its artifacts behind.
        std::stringstream chrome_text;
        chrome_text << std::ifstream(chrome).rdbuf();
        EXPECT_NE(chrome_text.str().find("study.cell"),
                  std::string::npos);
        EXPECT_NE(chrome_text.str().find("worker 0"), std::string::npos);
        std::stringstream progress_text;
        progress_text << std::ifstream(progress).rdbuf();
        EXPECT_NE(progress_text.str().find("\"event\":\"progress_final\""),
                  std::string::npos);
        EXPECT_NE(progress_text.str().find("\"label\":\"iq-sweep\""),
                  std::string::npos);
        std::remove(chrome.c_str());
        std::remove(progress.c_str());
    }
}

TEST(HostProfileTest, SampledStudyIsIdenticalWithProfilingOn)
{
    auto runStudy = [&](bool instrumented) {
        std::vector<std::string> args = {
            "sample-run", "li", "--study", "iq", "--instrs", "30000",
            "--jobs", "3"};
        if (instrumented) {
            args.push_back("--host-profile");
            args.push_back("--progress");
        }
        std::ostringstream out;
        std::ostringstream err;
        EXPECT_EQ(cli::runCommand(args, out, err), 0) << err.str();
        if (instrumented) {
            EXPECT_NE(err.str().find("stage attribution"),
                      std::string::npos)
                << err.str();
            EXPECT_NE(err.str().find("sample.replay"), std::string::npos)
                << err.str();
        }
        return out.str();
    };
    EXPECT_EQ(runStudy(false), runStudy(true));
}

TEST(HostProfileTest, SampleProfileEmitsStageTable)
{
    std::ostringstream out;
    std::ostringstream err;
    int rc = cli::runCommand({"sample-profile", "li", "--study", "iq",
                              "--instrs", "30000", "--host-profile"},
                             out, err);
    ASSERT_EQ(rc, 0) << err.str();
    EXPECT_NE(out.str().find("sampling plan"), std::string::npos);
    EXPECT_NE(err.str().find("stage attribution"), std::string::npos)
        << err.str();
    EXPECT_NE(err.str().find("sample.cluster"), std::string::npos)
        << err.str();
}

TEST(HostProfileTest, TelemetryJsonOnIntervalRunAndSampleRun)
{
    // Satellite of the run-health work: --telemetry-json is accepted
    // by interval-run and sample-run and lands the standard document.
    std::string path = tempPath("hp_interval_telemetry.json");
    std::ostringstream out;
    std::ostringstream err;
    int rc = cli::runCommand({"interval-run", "li", "--instrs", "30000",
                              "--telemetry-json", path},
                             out, err);
    ASSERT_EQ(rc, 0) << err.str();
    std::stringstream doc;
    doc << std::ifstream(path).rdbuf();
    EXPECT_NE(doc.str().find("\"wall_seconds\""), std::string::npos);
    std::remove(path.c_str());

    std::string sample_path = tempPath("hp_sample_telemetry.json");
    rc = cli::runCommand({"sample-run", "li", "--study", "iq",
                          "--instrs", "30000", "--jobs", "2",
                          "--telemetry-json", sample_path},
                         out, err);
    ASSERT_EQ(rc, 0) << err.str();
    std::stringstream sample_doc;
    sample_doc << std::ifstream(sample_path).rdbuf();
    EXPECT_NE(sample_doc.str().find("\"wall_seconds\""),
              std::string::npos);
    EXPECT_NE(sample_doc.str().find("\"pool\""), std::string::npos)
        << "sampled runs record thread-pool health";
    std::remove(sample_path.c_str());
}

} // namespace
} // namespace cap
