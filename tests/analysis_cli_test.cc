/**
 * @file
 * Tests for trace characterization (stack distances) and the CLI
 * driver.
 */

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cache/tlb.h"
#include "cli/cli.h"
#include "trace/analysis.h"
#include "trace/file_trace.h"
#include "trace/stream.h"
#include "trace/workloads.h"
#include "util/rng.h"

namespace cap {
namespace {

using trace::TraceAnalyzer;
using trace::TraceCharacter;
using trace::TraceRecord;

constexpr uint64_t kBlock = trace::kBlockBytes;

// ---------------------------------------------------------------------
// TraceAnalyzer
// ---------------------------------------------------------------------

TEST(TraceAnalyzerTest, CountsAndFootprint)
{
    TraceAnalyzer analyzer;
    analyzer.add({0, false});
    analyzer.add({8, true});      // same block
    analyzer.add({kBlock, false}); // second block
    TraceCharacter c = analyzer.character();
    EXPECT_EQ(c.refs, 3u);
    EXPECT_EQ(c.writes, 1u);
    EXPECT_EQ(c.footprint_blocks, 2u);
    EXPECT_EQ(c.cold_refs, 2u);
    EXPECT_NEAR(c.writeFraction(), 1.0 / 3.0, 1e-12);
}

TEST(TraceAnalyzerTest, ImmediateReuseHasDistanceOne)
{
    TraceAnalyzer analyzer;
    analyzer.add({0, false});
    analyzer.add({0, false});
    TraceCharacter c = analyzer.character();
    EXPECT_EQ(c.exact_counts[1], 1u);
    // A one-block cache hits it.
    EXPECT_NEAR(c.missRatioAtBlocks(1), 0.5, 1e-12);
}

TEST(TraceAnalyzerTest, CyclicSweepDistancesEqualRegionSize)
{
    // Sweeping N blocks cyclically: every re-reference has stack
    // distance exactly N.
    const uint64_t n = 64;
    TraceAnalyzer analyzer;
    for (int pass = 0; pass < 3; ++pass) {
        for (uint64_t b = 0; b < n; ++b)
            analyzer.add({b * kBlock, false});
    }
    TraceCharacter c = analyzer.character();
    // All non-cold references have distance exactly 64.
    EXPECT_EQ(c.exact_counts[64], 2 * n);
    // A 63-block cache misses everything; a 64-block cache holds it.
    EXPECT_NEAR(c.missRatioAtBlocks(63), 1.0, 1e-12);
    EXPECT_NEAR(c.missRatioAtBlocks(64),
                static_cast<double>(n) / (3 * n), 1e-12);
}

TEST(TraceAnalyzerTest, MissRatioCurveMonotone)
{
    const trace::AppProfile &app = trace::findApp("gcc");
    trace::SyntheticTraceSource source(app.cache, app.seed, 40000);
    TraceCharacter c = trace::analyzeTrace(source, 0);
    EXPECT_EQ(c.refs, 40000u);
    double prev = 1.0;
    for (uint64_t kb = 1; kb <= 512; kb *= 2) {
        double miss = c.missRatioAtBytes(kib(kb));
        EXPECT_LE(miss, prev + 1e-12);
        EXPECT_GE(miss, 0.0);
        prev = miss;
    }
    // At huge capacity only cold misses remain.
    EXPECT_NEAR(c.missRatioAtBytes(mib(64)),
                static_cast<double>(c.cold_refs) /
                    static_cast<double>(c.refs),
                1e-9);
}

TEST(TraceAnalyzerTest, GrowthRebuildPreservesCorrectness)
{
    // Push past several Fenwick doublings (initial size 1024) with a
    // two-block ping-pong whose distances are always 2.
    TraceAnalyzer analyzer;
    for (int i = 0; i < 5000; ++i) {
        analyzer.add({0, false});
        analyzer.add({kBlock, false});
    }
    TraceCharacter c = analyzer.character();
    EXPECT_EQ(c.refs, 10000u);
    // All non-cold distances are 2.
    EXPECT_EQ(c.exact_counts[2], 10000u - 2u);
    EXPECT_EQ(c.exact_counts[1], 0u);
}

TEST(TraceAnalyzerTest, MatchesSimulatedFullyAssociativeCache)
{
    // Differential check: stack-distance miss ratio at capacity C must
    // match a simulated fully-associative LRU cache of C blocks, when
    // C is a bin boundary.
    Rng rng(77);
    std::vector<TraceRecord> records;
    for (int i = 0; i < 20000; ++i)
        records.push_back({rng.zipf(512, 0.9) * kBlock, false});

    TraceAnalyzer analyzer;
    for (const TraceRecord &r : records)
        analyzer.add(r);
    double predicted = analyzer.character().missRatioAtBlocks(128);

    // Simulate via a TLB (it is exactly a fully-associative LRU array
    // over "pages"; use block-sized pages).
    cache::Tlb lru(128, kBlock);
    for (const TraceRecord &r : records)
        lru.access(r.addr);
    double simulated = lru.stats().missRatio();
    EXPECT_NEAR(predicted, simulated, 1e-12);
}

// ---------------------------------------------------------------------
// CLI
// ---------------------------------------------------------------------

int
run(const std::vector<std::string> &args, std::string *out_text = nullptr)
{
    std::ostringstream out, err;
    int code = cli::runCommand(args, out, err);
    if (out_text)
        *out_text = out.str() + err.str();
    return code;
}

TEST(CliTest, ParseArgs)
{
    cli::Options options = cli::parseArgs(
        {"li", "out.din", "--refs", "5000", "--block=64", "--verbose"});
    ASSERT_EQ(options.positional.size(), 2u);
    EXPECT_EQ(options.positional[0], "li");
    EXPECT_EQ(options.positional[1], "out.din");
    EXPECT_EQ(options.getU64("refs", 0), 5000u);
    EXPECT_EQ(options.getU64("block", 0), 64u);
    // A trailing flag with no value parses as an empty string.
    EXPECT_EQ(options.get("verbose", "unset"), "");
    EXPECT_EQ(options.get("missing", "dflt"), "dflt");
    EXPECT_EQ(options.getU64("missing", 7), 7u);
}

TEST(CliTest, HelpAndUnknownCommand)
{
    std::string text;
    EXPECT_EQ(run({"help"}, &text), 0);
    EXPECT_NE(text.find("cache-sweep"), std::string::npos);
    EXPECT_EQ(run({}, &text), 0);
    // Unknown commands get a distinct exit code and the command list.
    EXPECT_EQ(run({"frobnicate"}, &text), cli::kUnknownCommandExit);
    EXPECT_NE(text.find("unknown command"), std::string::npos);
    EXPECT_NE(text.find("known commands:"), std::string::npos);
    EXPECT_NE(text.find("cache-sweep"), std::string::npos);
}

TEST(CliTest, AppsListsSuite)
{
    std::string text;
    EXPECT_EQ(run({"apps"}, &text), 0);
    EXPECT_NE(text.find("stereo"), std::string::npos);
    EXPECT_NE(text.find("appcg"), std::string::npos);
    EXPECT_NE(text.find("SPECfp95"), std::string::npos);
}

TEST(CliTest, TimingPrintsBothTables)
{
    std::string text;
    EXPECT_EQ(run({"timing"}, &text), 0);
    EXPECT_NE(text.find("16KB/4way"), std::string::npos);
    EXPECT_NE(text.find("instruction-queue"), std::string::npos);
}

TEST(CliTest, CacheSweepSingleApp)
{
    std::string text;
    EXPECT_EQ(run({"cache-sweep", "li", "--refs", "20000"}, &text), 0);
    EXPECT_NE(text.find("li"), std::string::npos);
    EXPECT_NE(text.find("64KB"), std::string::npos);
}

TEST(CliTest, IqSweepSingleApp)
{
    std::string text;
    EXPECT_EQ(run({"iq-sweep", "appcg", "--instrs", "20000"}, &text), 0);
    EXPECT_NE(text.find("appcg"), std::string::npos);
    // appcg favours the 16-entry queue.
    EXPECT_NE(text.find("| 16"), std::string::npos);
}

TEST(CliTest, SweepRejectsUnknownApp)
{
    std::string text;
    EXPECT_EQ(run({"cache-sweep", "doom"}, &text), 2);
    EXPECT_NE(text.find("unknown application"), std::string::npos);
    EXPECT_EQ(run({"cache-sweep"}, &text), 2);
}

TEST(CliTest, GenTraceAndAnalyzeRoundTrip)
{
    std::string path = testing::TempDir() + "/capsim_cli_trace.din";
    std::string text;
    EXPECT_EQ(run({"gen-trace", "li", path, "--refs", "3000"}, &text), 0);
    EXPECT_NE(text.find("wrote 3000"), std::string::npos);
    EXPECT_EQ(run({"analyze", path, "--limit", "3000"}, &text), 0);
    EXPECT_NE(text.find("footprint"), std::string::npos);
    EXPECT_NE(text.find("miss_ratio"), std::string::npos);
    std::remove(path.c_str());
}

TEST(CliTest, GenTraceRequiresArguments)
{
    std::string text;
    EXPECT_EQ(run({"gen-trace", "li"}, &text), 2);
    EXPECT_EQ(run({"analyze"}, &text), 2);
}

} // namespace
} // namespace cap
