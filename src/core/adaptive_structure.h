/**
 * @file
 * Abstract view of a complexity-adaptive structure (CAS) as the
 * Configuration Manager sees it (paper Figure 5): an ordered set of
 * configurations, each with a worst-case cycle-time requirement.
 *
 * The Configuration Manager combines the requirements of every CAS
 * with the fixed structures' floor to pick the processor clock
 * (worst-case rule), which is also how the paper's Section 5.4 caveat
 * arises: one slow structure can limit the useful configuration range
 * of another.
 */

#ifndef CAPSIM_CORE_ADAPTIVE_STRUCTURE_H
#define CAPSIM_CORE_ADAPTIVE_STRUCTURE_H

#include <string>

#include "util/units.h"

namespace cap::core {

/** One configurable hardware structure. */
class AdaptiveStructure
{
  public:
    virtual ~AdaptiveStructure() = default;

    /** Display name ("dcache-hierarchy", "instruction-queue"). */
    virtual std::string name() const = 0;

    /** Number of configurations (ordered small/fast -> large/slow). */
    virtual int configCount() const = 0;

    /** Human-readable name of a configuration. */
    virtual std::string configName(int config) const = 0;

    /** Worst-case cycle-time requirement of a configuration, ns. */
    virtual Nanoseconds cycleRequirement(int config) const = 0;

    /**
     * Cycles needed to clean up when switching @p from -> @p to
     * (e.g. draining queue entries), excluding the clock-switch pause.
     */
    virtual Cycles reconfigureCleanupCycles(int from, int to) const
    {
        (void)from;
        (void)to;
        return 0;
    }
};

} // namespace cap::core

#endif // CAPSIM_CORE_ADAPTIVE_STRUCTURE_H
