#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/units.h"

namespace cap::mem {

/** Which memory backend serves L2 misses. Flat is the historical
 *  fixed-latency edge (CacheMachine::kL2MissNs per miss) and the
 *  differential-test reference; Dram is the banked row-buffer model
 *  with MSHR-based non-blocking misses. */
enum class MemKind { Flat, Dram };

/** Row-buffer management policy. Open keeps the row latched after an
 *  access (hits are cheap, conflicts pay precharge+activate); Closed
 *  precharges eagerly, so every access pays activate+read but never a
 *  conflict. */
enum class PagePolicy { Open, Closed };

/** Timing knobs for the banked DRAM backend. The defaults are chosen
 *  so that a fully row-conflicting, bank-serial workload degrades
 *  toward (and past) the historical 30 ns flat edge while streaming
 *  row hits run about twice as fast. */
struct DramParams {
    /** Number of independent banks (row IDs interleave across them). */
    uint32_t banks = 8;
    /** Row-buffer size in bytes; consecutive addresses share a row. */
    uint64_t row_bytes = 2048;
    /** Access that hits the open row: column access + transfer. */
    Nanoseconds row_hit_ns = 15.0;
    /** Access to an idle (precharged) bank: activate + column; the
     *  default matches the historical flat edge (kL2MissNs). */
    Nanoseconds row_miss_ns = 2.0 * row_hit_ns;
    /** Access that must close another row first: precharge +
     *  activate + column. */
    Nanoseconds row_conflict_ns = 3.0 * row_hit_ns;
    /** Channel occupancy per transfer; back-to-back accesses to
     *  different banks still serialize on this. */
    Nanoseconds burst_ns = 4.0;
    /** MSHR file size: maximum outstanding primary misses. */
    uint32_t mshr_entries = 8;
    /** Row-buffer management policy. */
    PagePolicy page_policy = PagePolicy::Open;
};

/** Full memory configuration as selected by `--mem=...`. */
struct MemConfig {
    MemKind kind = MemKind::Flat;
    DramParams dram;

    bool isDram() const { return kind == MemKind::Dram; }

    /** Canonical spec string (parseable by parseMemSpec); "flat" or
     *  "dram:banks=..,row=..,...". Used for labels and job specs. */
    std::string canonical() const;
};

/** Parse a `--mem` spec: "flat", "dram", or "dram:" followed by
 *  comma-separated knobs (banks, row, hit, miss, conflict, burst,
 *  mshr, policy=open|closed). Returns false and fills @p error on a
 *  malformed spec; @p config is untouched on failure. */
bool parseMemSpec(const std::string &spec, MemConfig &config,
                  std::string &error);

/** Aggregate DRAM-side statistics for one backend instance. */
struct DramStats {
    uint64_t accesses = 0;
    uint64_t row_hits = 0;
    uint64_t row_misses = 0;
    uint64_t row_conflicts = 0;
    /** Sum of pure service latencies (completion - issue); each term
     *  is at least row_hit_ns, the model's latency floor. */
    Nanoseconds service_ns = 0.0;
    /** Sum of queueing waits (issue - arrival) lost to busy banks and
     *  channel contention. */
    Nanoseconds queue_ns = 0.0;
};

/** Aggregate MSHR-side statistics. allocs + merges equals the number
 *  of misses presented to the backend. */
struct MshrStats {
    uint64_t allocs = 0;
    uint64_t merges = 0;
    uint64_t full_stalls = 0;
    /** Pipeline stall charged across all misses (what the perf models
     *  add to compute time in place of misses * kL2MissNs). */
    Nanoseconds stall_ns = 0.0;
};

/** Banked DRAM timing backend with a bounded MSHR file.
 *
 *  Deterministic and trace-ordered: the caller walks the reference
 *  stream maintaining a running pipeline clock `now_ns` and presents
 *  each L2 miss in order; onMiss() returns the stall to charge the
 *  pipeline. Overlap is modeled by the MSHR file: a primary miss
 *  charges its total wait divided by the number of misses then in
 *  flight (memory-level parallelism discount), a secondary miss to a
 *  block already in flight merges and charges only the remaining
 *  wait, and when the file is full the pipeline stalls until the
 *  earliest outstanding miss completes. */
class DramBackend {
public:
    explicit DramBackend(const DramParams &params);

    /** Present one L2 miss for @p addr at pipeline time @p now_ns;
     *  returns the stall (>= 0) to charge the pipeline. */
    Nanoseconds onMiss(Addr addr, Nanoseconds now_ns);

    /** Forget all bank/MSHR state and statistics. */
    void reset();

    const DramParams &params() const { return params_; }
    const DramStats &dramStats() const { return dram_; }
    const MshrStats &mshrStats() const { return mshr_; }

private:
    struct Bank {
        uint64_t open_row = 0;
        bool row_valid = false;
        Nanoseconds busy_until = 0.0;
    };
    struct Entry {
        Addr block = 0;
        Nanoseconds completion = 0.0;
        bool valid = false;
    };

    /** Issue one DRAM access and return its completion time. */
    Nanoseconds serviceAccess(Addr addr, Nanoseconds ready_ns);

    DramParams params_;
    std::vector<Bank> banks_;
    std::vector<Entry> mshrs_;
    Nanoseconds channel_free_ = 0.0;
    DramStats dram_;
    MshrStats mshr_;
};

} // namespace cap::mem
