#include "result_cache.h"

#include <algorithm>
#include <fstream>

#include "util/json.h"
#include "util/status.h"

namespace cap::serve {

uint64_t
fnv1a(const void *data, size_t len, uint64_t seed)
{
    const unsigned char *bytes = static_cast<const unsigned char *>(data);
    uint64_t hash = seed;
    for (size_t i = 0; i < len; ++i) {
        hash ^= bytes[i];
        hash *= 1099511628211ull;
    }
    return hash;
}

uint64_t
fnv1a(const std::string &text, uint64_t seed)
{
    return fnv1a(text.data(), text.size(), seed);
}

KeyBuilder &
KeyBuilder::add(const std::string &field, const std::string &value)
{
    // Escape so a crafted value cannot collide with another field's
    // `field=value;` token stream.
    fields_.emplace_back(field, json::escape(value));
    return *this;
}

KeyBuilder &
KeyBuilder::add(const std::string &field, uint64_t value)
{
    fields_.emplace_back(field, std::to_string(value));
    return *this;
}

KeyBuilder &
KeyBuilder::add(const std::string &field, int64_t value)
{
    fields_.emplace_back(field, std::to_string(value));
    return *this;
}

KeyBuilder &
KeyBuilder::addBits(const std::string &field, double value)
{
    fields_.emplace_back(field, json::doubleBits(value));
    return *this;
}

std::string
KeyBuilder::canonical() const
{
    std::vector<std::pair<std::string, std::string>> sorted = fields_;
    std::sort(sorted.begin(), sorted.end());
    std::string out;
    for (const auto &[field, value] : sorted) {
        out += field;
        out += '=';
        out += value;
        out += ';';
    }
    return out;
}

uint64_t
KeyBuilder::hash() const
{
    return fnv1a(canonical());
}

uint64_t
hashAppProfile(const trace::AppProfile &app)
{
    KeyBuilder key;
    key.add("name", app.name);
    key.add("suite", static_cast<int64_t>(app.suite));
    key.add("seed", app.seed);
    key.add("in_cache_study", app.in_cache_study);

    auto addMix = [&key](const std::string &prefix,
                         const std::vector<trace::PatternSpec> &mix) {
        key.add(prefix + ".n", static_cast<uint64_t>(mix.size()));
        for (size_t i = 0; i < mix.size(); ++i) {
            std::string p = prefix + "[" + std::to_string(i) + "].";
            key.add(p + "kind", static_cast<int64_t>(mix[i].kind));
            key.addBits(p + "weight", mix[i].weight);
            key.add(p + "region_bytes", mix[i].region_bytes);
            key.addBits(p + "zipf_s", mix[i].zipf_s);
            key.add(p + "touches", mix[i].touches_per_block);
        }
    };
    addMix("cache.mix", app.cache.mix);
    key.addBits("cache.write_fraction", app.cache.write_fraction);
    key.addBits("cache.refs_per_instr", app.cache.refs_per_instr);
    key.add("cache.phases.n",
            static_cast<uint64_t>(app.cache.phases.size()));
    for (size_t p = 0; p < app.cache.phases.size(); ++p) {
        std::string prefix = "cache.phases[" + std::to_string(p) + "]";
        addMix(prefix + ".mix", app.cache.phases[p].mix);
        key.add(prefix + ".length_refs", app.cache.phases[p].length_refs);
    }

    key.add("ilp.phases.n",
            static_cast<uint64_t>(app.ilp.phases.size()));
    for (size_t i = 0; i < app.ilp.phases.size(); ++i) {
        const trace::IlpPhase &phase = app.ilp.phases[i];
        std::string p = "ilp.phases[" + std::to_string(i) + "].";
        key.add(p + "min_dep", static_cast<uint64_t>(phase.min_dep_distance));
        key.addBits(p + "mean_dep", phase.mean_dep_distance);
        key.addBits(p + "second_src_prob", phase.second_src_prob);
        key.addBits(p + "mean_dep2", phase.mean_dep_distance2);
        key.addBits(p + "long_lat_prob", phase.long_lat_prob);
        key.add(p + "long_lat_cycles", phase.long_lat_cycles);
        key.add(p + "short_lat_cycles", phase.short_lat_cycles);
    }
    key.add("ilp.schedule.n",
            static_cast<uint64_t>(app.ilp.schedule.size()));
    for (size_t i = 0; i < app.ilp.schedule.size(); ++i) {
        std::string p = "ilp.schedule[" + std::to_string(i) + "].";
        key.add(p + "phase", app.ilp.schedule[i].phase);
        key.add(p + "length_instrs", app.ilp.schedule[i].length_instrs);
    }
    return key.hash();
}

ResultCache::ResultCache(size_t capacity, std::string spill_path)
    : capacity_(std::max<size_t>(capacity, 1)),
      spill_path_(std::move(spill_path))
{
    if (!spill_path_.empty())
        loadSpill();
}

bool
ResultCache::get(uint64_t key, std::string &value)
{
    auto it = index_.find(key);
    if (it != index_.end()) {
        lru_.splice(lru_.begin(), lru_, it->second);
        value = it->second->second;
        ++stats_.hits;
        return true;
    }
    auto spilled = spill_index_.find(key);
    if (spilled != spill_index_.end()) {
        value = spilled->second;
        ++stats_.hits;
        ++stats_.spill_hits;
        // Promote back into memory (no re-spill: already on disk).
        lru_.emplace_front(key, value);
        index_[key] = lru_.begin();
        while (index_.size() > capacity_) {
            index_.erase(lru_.back().first);
            lru_.pop_back();
            ++stats_.evictions;
        }
        return true;
    }
    ++stats_.misses;
    return false;
}

bool
ResultCache::contains(uint64_t key) const
{
    return index_.count(key) > 0 || spill_index_.count(key) > 0;
}

void
ResultCache::put(uint64_t key, const std::string &value)
{
    auto it = index_.find(key);
    if (it != index_.end()) {
        it->second->second = value;
        lru_.splice(lru_.begin(), lru_, it->second);
        return;
    }
    lru_.emplace_front(key, value);
    index_[key] = lru_.begin();
    ++stats_.insertions;
    while (index_.size() > capacity_) {
        index_.erase(lru_.back().first);
        lru_.pop_back();
        ++stats_.evictions;
    }
    if (!spill_path_.empty() && spill_index_.find(key) == spill_index_.end())
        appendSpill(key, value);
}

std::string
ResultCache::formatSpillLine(uint64_t key, const std::string &value)
{
    std::string line = "{\"key\":\"" + std::to_string(key) +
                       "\",\"crc\":\"" + std::to_string(fnv1a(value)) +
                       "\",\"value\":" + json::quote(value) + "}";
    return line;
}

bool
ResultCache::parseSpillLine(const std::string &line, uint64_t &key,
                            std::string &value)
{
    json::Value parsed;
    std::string error;
    if (!json::parse(line, parsed, error) || !parsed.isObject())
        return false;
    const json::Value *key_field = parsed.find("key");
    const json::Value *crc_field = parsed.find("crc");
    const json::Value *value_field = parsed.find("value");
    if (!key_field || !key_field->isString() || !crc_field ||
        !crc_field->isString() || !value_field ||
        !value_field->isString())
        return false;
    uint64_t crc = 0;
    if (!json::parseU64(key_field->string, key) ||
        !json::parseU64(crc_field->string, crc))
        return false;
    if (fnv1a(value_field->string) != crc)
        return false;
    value = value_field->string;
    return true;
}

void
ResultCache::loadSpill()
{
    std::ifstream file(spill_path_);
    if (!file)
        return;
    std::string line;
    while (std::getline(file, line)) {
        if (line.empty())
            continue;
        uint64_t key = 0;
        std::string value;
        if (!parseSpillLine(line, key, value)) {
            ++stats_.poisoned;
            continue;
        }
        // Last writer wins, matching append order.
        spill_index_[key] = std::move(value);
        ++stats_.spill_loaded;
    }
}

void
ResultCache::appendSpill(uint64_t key, const std::string &value)
{
    std::ofstream file(spill_path_, std::ios::app);
    if (!file)
        return;
    file << formatSpillLine(key, value) << '\n';
    if (file) {
        spill_index_[key] = value;
        ++stats_.spilled;
    }
}

} // namespace cap::serve
