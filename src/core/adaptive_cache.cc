#include "adaptive_cache.h"

#include <cmath>

#include "cache/stack_sim.h"
#include "timing/area.h"
#include "trace/stream.h"
#include "util/status.h"

namespace cap::core {

namespace {

// Tag + status storage makes each increment slightly larger than its
// data capacity when computing physical pitch.
constexpr double kTagAreaOverhead = 1.25;

// Serialization overhead of an L2 access beyond bus + increment
// delays (bank selection, way steering, fill alignment), ns.  Chosen
// so the 30 ns miss latency is 2-3x the L2 hit latency, as the paper
// states.
constexpr double kL2FixedNs = 5.0;

/** The Cell summary record evaluateObserved() emits; shared with the
 *  one-pass sweep so both paths stay byte-identical. */
obs::TraceEvent
cellEvent(const trace::AppProfile &app, const CacheBoundaryTiming &timing,
          const CachePerf &perf)
{
    std::string config = std::to_string(timing.l1_bytes / 1024) + "KB/" +
                         std::to_string(timing.l1_assoc) + "way";
    obs::TraceEvent event;
    event.kind = obs::EventKind::Cell;
    event.lane = app.name + "/" + config;
    event.app = app.name;
    event.config = config;
    event.retired = perf.instructions;
    event.cycles = perf.refs;
    event.duration_ns =
        perf.tpi_ns * static_cast<double>(perf.instructions);
    event.tpi_ns = perf.tpi_ns;
    return event;
}

/** The `cache.*` scalar counters a per-config run would accumulate,
 *  reconstructed from exact stats (service_way excepted). */
void
foldCacheCounters(obs::CounterRegistry &registry,
                  const cache::CacheStats &stats)
{
    registry.counter("cache.refs").add(stats.refs);
    registry.counter("cache.l1_hits").add(stats.l1_hits);
    registry.counter("cache.l2_hits").add(stats.l2_hits);
    registry.counter("cache.misses").add(stats.misses);
    registry.counter("cache.writebacks").add(stats.writebacks);
    registry.counter("cache.swaps").add(stats.swaps);
}

} // namespace

namespace detail {

void
foldMemCounters(obs::CounterRegistry &registry,
                const mem::DramBackend &backend)
{
    const mem::DramStats &dram = backend.dramStats();
    const mem::MshrStats &mshr = backend.mshrStats();
    registry.counter("dram.accesses").add(dram.accesses);
    registry.counter("dram.row_hits").add(dram.row_hits);
    registry.counter("dram.row_misses").add(dram.row_misses);
    registry.counter("dram.row_conflicts").add(dram.row_conflicts);
    registry.counter("dram.service_ns")
        .add(static_cast<uint64_t>(dram.service_ns));
    registry.counter("dram.queue_ns")
        .add(static_cast<uint64_t>(dram.queue_ns));
    registry.counter("mshr.allocs").add(mshr.allocs);
    registry.counter("mshr.merges").add(mshr.merges);
    registry.counter("mshr.full_stalls").add(mshr.full_stalls);
    registry.counter("mshr.stall_ns")
        .add(static_cast<uint64_t>(mshr.stall_ns));
}

} // namespace detail

AdaptiveCacheModel::AdaptiveCacheModel(
    const cache::HierarchyGeometry &geometry,
    const timing::Technology &tech)
    : geometry_(geometry), tech_(&tech), wires_(tech)
{
    geometry_.validate();

    timing::CactiLite cacti(tech);
    timing::CacheOrg org{geometry_.increment_bytes,
                         geometry_.increment_assoc,
                         geometry_.block_bytes,
                         geometry_.increment_banks};
    increment_access_ns_ = cacti.accessTime(org);

    double data_pitch =
        timing::AreaModel::subarrayPitchMm(geometry_.increment_bytes);
    increment_pitch_mm_ = data_pitch * std::sqrt(kTagAreaOverhead);
}

Nanoseconds
AdaptiveCacheModel::busDelayNs(int n) const
{
    capAssert(n >= 1 && n <= geometry_.increments,
              "increment index %d out of range", n);
    return wires_.bufferedDelay(increment_pitch_mm_ * n);
}

CacheBoundaryTiming
AdaptiveCacheModel::boundaryTiming(int l1_increments) const
{
    capAssert(l1_increments >= 1 &&
              l1_increments < geometry_.increments,
              "boundary %d out of range", l1_increments);

    CacheBoundaryTiming t;
    t.l1_increments = l1_increments;
    t.l1_bytes = geometry_.l1Bytes(l1_increments);
    t.l1_assoc = geometry_.l1Ways(l1_increments);

    // The slowest L1 increment (the one farthest along the bus)
    // determines the L1 access time; pipelined over three cycles, it
    // sets the processor cycle (paper Section 5.1).
    Nanoseconds l1_access = increment_access_ns_ + busDelayNs(l1_increments);
    Nanoseconds raw_cycle =
        l1_access / static_cast<double>(CacheMachine::kL1PipelineDepth);
    t.cycle_ns = clock_table_.cycleFor(raw_cycle);

    // An L2 access traverses the address bus to the farthest
    // increment, performs a local access, and returns data; tag and
    // data phases are serialized in the L2 region.
    Nanoseconds l2_access = 2.0 * increment_access_ns_ +
                            2.0 * busDelayNs(geometry_.increments) +
                            kL2FixedNs;
    t.l2_hit_cycles = missCycles(l2_access, t.cycle_ns);
    t.miss_cycles = missCycles(CacheMachine::kL2MissNs, t.cycle_ns);
    return t;
}

std::vector<CacheBoundaryTiming>
AdaptiveCacheModel::allBoundaryTimings() const
{
    std::vector<CacheBoundaryTiming> timings;
    for (int k = 1; k < geometry_.increments; ++k)
        timings.push_back(boundaryTiming(k));
    return timings;
}

CachePerf
AdaptiveCacheModel::perfFromStats(const cache::CacheStats &stats,
                                  const CacheBoundaryTiming &timing,
                                  double refs_per_instr) const
{
    capAssert(refs_per_instr > 0.0, "refs_per_instr must be positive");
    CachePerf perf;
    perf.l1_increments = timing.l1_increments;
    perf.refs = stats.refs;
    perf.instructions = static_cast<uint64_t>(
        static_cast<double>(stats.refs) / refs_per_instr);
    perf.l1_miss_ratio = stats.l1MissRatio();
    perf.global_miss_ratio = stats.globalMissRatio();
    if (perf.instructions == 0)
        return perf;

    double base_cycles =
        static_cast<double>(perf.instructions) / CacheMachine::kBaseIpc;
    double stall_cycles =
        static_cast<double>(stats.l2_hits) *
            static_cast<double>(timing.l2_hit_cycles) +
        static_cast<double>(stats.misses) *
            static_cast<double>(timing.miss_cycles);

    double instrs = static_cast<double>(perf.instructions);
    perf.tpi_ns = timing.cycle_ns * (base_cycles + stall_cycles) / instrs;
    perf.tpi_miss_ns = timing.cycle_ns * stall_cycles / instrs;
    return perf;
}

CachePerf
AdaptiveCacheModel::perfFromDram(const cache::CacheStats &stats,
                                 const CacheBoundaryTiming &timing,
                                 double refs_per_instr,
                                 Nanoseconds dram_stall_ns) const
{
    capAssert(refs_per_instr > 0.0, "refs_per_instr must be positive");
    CachePerf perf;
    perf.l1_increments = timing.l1_increments;
    perf.refs = stats.refs;
    perf.instructions = static_cast<uint64_t>(
        static_cast<double>(stats.refs) / refs_per_instr);
    perf.l1_miss_ratio = stats.l1MissRatio();
    perf.global_miss_ratio = stats.globalMissRatio();
    if (perf.instructions == 0)
        return perf;

    double base_cycles =
        static_cast<double>(perf.instructions) / CacheMachine::kBaseIpc;
    double l2_hit_ns = timing.cycle_ns *
                       static_cast<double>(stats.l2_hits) *
                       static_cast<double>(timing.l2_hit_cycles);

    double instrs = static_cast<double>(perf.instructions);
    perf.tpi_miss_ns = (l2_hit_ns + dram_stall_ns) / instrs;
    perf.tpi_ns =
        timing.cycle_ns * base_cycles / instrs + perf.tpi_miss_ns;
    return perf;
}

CachePerf
AdaptiveCacheModel::evaluateDram(const trace::AppProfile &app,
                                 int l1_increments, uint64_t refs,
                                 obs::DecisionTrace *trace,
                                 obs::CounterRegistry *registry) const
{
    capAssert(refs > 0, "evaluation needs references");
    CacheBoundaryTiming timing = boundaryTiming(l1_increments);

    cache::ExclusiveHierarchy hierarchy(geometry_, l1_increments);
    if (registry)
        hierarchy.attachMetrics(*registry);
    mem::DramBackend backend(mem_.dram);
    trace::SyntheticTraceSource source(app.cache, app.seed, refs);
    trace::TraceRecord batch[trace::kTraceBatch];

    // Pipeline clock of the dram walk: misses arrive at realistic
    // spacings so bank/MSHR state reflects the reference stream.
    Nanoseconds now_ns = 0.0;
    const Nanoseconds ref_ns =
        timing.cycle_ns /
        (CacheMachine::kBaseIpc * app.cache.refs_per_instr);
    const Nanoseconds l2_hit_ns =
        timing.cycle_ns * static_cast<double>(timing.l2_hit_cycles);
    Nanoseconds dram_stall_ns = 0.0;
    for (;;) {
        uint64_t n = source.nextBatch(batch, trace::kTraceBatch);
        if (n == 0)
            break;
        for (uint64_t i = 0; i < n; ++i) {
            cache::AccessOutcome outcome = hierarchy.access(batch[i]);
            now_ns += ref_ns;
            if (outcome == cache::AccessOutcome::L2Hit) {
                now_ns += l2_hit_ns;
            } else if (outcome == cache::AccessOutcome::Miss) {
                Nanoseconds stall = backend.onMiss(batch[i].addr, now_ns);
                now_ns += stall;
                dram_stall_ns += stall;
            }
        }
    }

    CachePerf perf = perfFromDram(hierarchy.stats(), timing,
                                  app.cache.refs_per_instr, dram_stall_ns);
    if (registry)
        detail::foldMemCounters(*registry, backend);
    if (trace)
        trace->add(cellEvent(app, timing, perf));
    return perf;
}

CachePerf
AdaptiveCacheModel::evaluate(const trace::AppProfile &app,
                             int l1_increments, uint64_t refs) const
{
    if (mem_.isDram())
        return evaluateDram(app, l1_increments, refs, nullptr, nullptr);
    capAssert(refs > 0, "evaluation needs references");
    CacheBoundaryTiming timing = boundaryTiming(l1_increments);

    cache::ExclusiveHierarchy hierarchy(geometry_, l1_increments);
    trace::SyntheticTraceSource source(app.cache, app.seed, refs);
    trace::TraceRecord batch[trace::kTraceBatch];
    for (;;) {
        uint64_t n = source.nextBatch(batch, trace::kTraceBatch);
        if (n == 0)
            break;
        for (uint64_t i = 0; i < n; ++i)
            hierarchy.access(batch[i]);
    }

    return perfFromStats(hierarchy.stats(), timing,
                         app.cache.refs_per_instr);
}

CachePerf
AdaptiveCacheModel::evaluateObserved(const trace::AppProfile &app,
                                     int l1_increments, uint64_t refs,
                                     obs::DecisionTrace *trace,
                                     obs::CounterRegistry *registry) const
{
    if (mem_.isDram())
        return evaluateDram(app, l1_increments, refs, trace, registry);
    if (!trace && !registry)
        return evaluate(app, l1_increments, refs);
    capAssert(refs > 0, "evaluation needs references");
    CacheBoundaryTiming timing = boundaryTiming(l1_increments);

    cache::ExclusiveHierarchy hierarchy(geometry_, l1_increments);
    if (registry)
        hierarchy.attachMetrics(*registry);
    trace::SyntheticTraceSource source(app.cache, app.seed, refs);
    trace::TraceRecord batch[trace::kTraceBatch];
    for (;;) {
        uint64_t n = source.nextBatch(batch, trace::kTraceBatch);
        if (n == 0)
            break;
        for (uint64_t i = 0; i < n; ++i)
            hierarchy.access(batch[i]);
    }

    CachePerf perf = perfFromStats(hierarchy.stats(), timing,
                                   app.cache.refs_per_instr);
    if (trace)
        trace->add(cellEvent(app, timing, perf));
    return perf;
}

std::vector<CachePerf>
AdaptiveCacheModel::sweep(const trace::AppProfile &app,
                          int max_l1_increments, uint64_t refs) const
{
    capAssert(max_l1_increments >= 1 &&
              max_l1_increments < geometry_.increments,
              "sweep bound out of range");
    std::vector<CachePerf> results;
    for (int k = 1; k <= max_l1_increments; ++k)
        results.push_back(evaluate(app, k, refs));
    return results;
}

std::vector<CachePerf>
AdaptiveCacheModel::sweepOnePass(const trace::AppProfile &app,
                                 int max_l1_increments,
                                 uint64_t refs) const
{
    return sweepOnePassObserved(app, max_l1_increments, refs, nullptr,
                                nullptr);
}

std::vector<CachePerf>
AdaptiveCacheModel::sweepOnePassObserved(
    const trace::AppProfile &app, int max_l1_increments, uint64_t refs,
    obs::DecisionTrace *trace, obs::CounterRegistry *registry) const
{
    capAssert(refs > 0, "evaluation needs references");
    capAssert(max_l1_increments >= 1 &&
              max_l1_increments < geometry_.increments,
              "sweep bound out of range");

    if (mem_.isDram()) {
        // Stack distances cannot price a dram miss: its cost depends
        // on the address order (row locality, bank overlap), which
        // the depth histogram discards.  Fall back to the per-config
        // lane engine -- exactness over speed (docs/PERF.md).
        std::vector<CachePerf> results;
        results.reserve(static_cast<size_t>(max_l1_increments));
        for (int k = 1; k <= max_l1_increments; ++k)
            results.push_back(
                evaluateObserved(app, k, refs, trace, registry));
        if (registry)
            registry->counter("stacksim.dram_fallbacks").add(1);
        return results;
    }

    cache::StackSimulator stack(geometry_);
    trace::SyntheticTraceSource source(app.cache, app.seed, refs);
    trace::TraceRecord batch[trace::kTraceBatch];
    for (;;) {
        uint64_t n = source.nextBatch(batch, trace::kTraceBatch);
        if (n == 0)
            break;
        stack.accessBatch(batch, n);
    }

    std::vector<CachePerf> results;
    results.reserve(static_cast<size_t>(max_l1_increments));
    for (int k = 1; k <= max_l1_increments; ++k) {
        CacheBoundaryTiming timing = boundaryTiming(k);
        cache::CacheStats stats = stack.statsFor(k);
        CachePerf perf =
            perfFromStats(stats, timing, app.cache.refs_per_instr);
        if (registry)
            foldCacheCounters(*registry, stats);
        if (trace)
            trace->add(cellEvent(app, timing, perf));
        results.push_back(perf);
    }
    if (registry) {
        registry->counter("stacksim.sweeps").add(1);
        registry->counter("stacksim.refs").add(stack.refs());
        registry->counter("stacksim.boundaries")
            .add(static_cast<uint64_t>(max_l1_increments));
    }
    return results;
}

} // namespace cap::core
