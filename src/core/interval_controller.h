/**
 * @file
 * Interval-based adaptive configuration control (paper Section 6).
 *
 * The paper observes that the best-performing configuration often
 * follows long or regular patterns within an application (Figure 12,
 * turb3d; Figure 13a, vortex) but is sometimes irregular with no
 * configuration clearly ahead (Figure 13b) -- so a dynamic predictor
 * "should assign a confidence level to each prediction that is made,
 * in order to avoid needless reconfiguration overhead."
 *
 * IntervalAdaptiveIq realizes that sketch for the instruction queue:
 * a hill-climbing controller that probes neighbouring configurations
 * at a fixed period, maintains exponentially weighted TPI estimates,
 * and commits to a move only after a configurable number of
 * consecutive confirming probes (the confidence gate).  Every
 * reconfiguration pays its real cost: queue draining plus the
 * clock-switch pause.
 *
 * runIntervalOracle() provides the comparison bound: per-interval
 * best configuration with perfect knowledge.
 */

#ifndef CAPSIM_CORE_INTERVAL_CONTROLLER_H
#define CAPSIM_CORE_INTERVAL_CONTROLLER_H

#include <vector>

#include "core/adaptive_iq.h"
#include "core/telemetry.h"
#include "obs/hooks.h"
#include "trace/profile.h"
#include "util/units.h"

namespace cap::core {

/** What schedules the controller's neighbour probes. */
enum class IntervalTrigger {
    /** Fixed probe_period timer (the paper's baseline sketch). */
    Period,
    /**
     * Online phase transitions (sample::OnlinePhaseDetector) trigger
     * an aggressive climb; once the climb settles, probing drops
     * straight to probe_period_max -- a slow safety net so a
     * mistakenly remembered configuration can still be corrected.  A
     * recurring phase snaps straight to the configuration remembered
     * for it (see docs/MODEL.md section 13).
     */
    PhaseChange,
    /**
     * PhaseChange, except that after the climb settles the probe
     * period backs off exponentially (probe_period doubling up to
     * probe_period_max) instead of jumping to the ceiling -- catches
     * drift the detector cannot see while still probing rarely in
     * steady state.
     */
    Hybrid,
};

/** Tunables of the interval controller. */
struct IntervalPolicyParams
{
    /** EWMA weight of the newest interval measurement. */
    double ewma_alpha = 0.3;
    /** Minimum relative TPI gain a move must promise. */
    double switch_margin = 0.02;
    /** Consecutive confirming probes required before moving. */
    int confidence_needed = 2;
    /** Intervals between probes of a neighbouring configuration. */
    int probe_period = 8;
    /** Interval length, instructions. */
    uint64_t interval_instrs = kIntervalInstructions;
    /** If false, the confidence gate is disabled (ablation). */
    bool use_confidence = true;
    /**
     * Clock-switch pause charged per reconfiguration, cycles at the
     * new clock (Section 4.1).  The oracle defaults to the same
     * constant; keep them equal unless deliberately studying
     * asymmetric switch costs.
     */
    Cycles switch_penalty_cycles = kClockSwitchPenaltyCycles;
    /** What schedules probes; Period reproduces the fixed-period
     *  controller exactly (no phase detector is even constructed). */
    IntervalTrigger trigger = IntervalTrigger::Period;
    /** Exponential-backoff ceiling on the probe period (phase modes);
     *  must be >= probe_period. */
    int probe_period_max = 64;
    /** Leader-follower assignment radius, relative-distance units
     *  (phase modes; see sample::OnlinePhaseParams). */
    double phase_distance_threshold = 1.0;
    /** Phase-table capacity (phase modes). */
    size_t max_phases = 16;
};

/** Outcome of an interval-controlled (or oracle) run. */
struct IntervalRunResult
{
    uint64_t instructions = 0;
    /** Wall-clock time of the run, ns (includes switch overheads). */
    double total_time_ns = 0.0;
    /** Number of physical reconfigurations (including probe trips). */
    int reconfigurations = 0;
    /**
     * Number of *committed* moves: decisions to adopt a new home
     * configuration (probe round-trips excluded).  The confidence
     * gate exists to keep this low on irregular workloads.
     */
    int committed_moves = 0;
    /** Configuration (queue entries) active in each interval. */
    std::vector<int> config_trace;
    /** Phase transitions observed (phase modes; 0 under Period). */
    int phase_transitions = 0;
    /**
     * Reconfigurations served straight from the per-phase memory on a
     * recurring phase (no re-climb); a subset of committed_moves.
     */
    int phase_snaps = 0;
    /** Phase ID of each interval (empty under Period). */
    std::vector<int> phase_trace;
    /** Execution cost of producing this result (audit/scaling data). */
    RunTelemetry telemetry;

    double tpi() const
    {
        return instructions ? total_time_ns /
                              static_cast<double>(instructions)
                            : 0.0;
    }
};

/** The Section-6 interval controller for the adaptive queue. */
class IntervalAdaptiveIq
{
  public:
    IntervalAdaptiveIq(const AdaptiveIqModel &model,
                       IntervalPolicyParams params);

    /**
     * Run @p instructions of @p app starting from @p initial_entries,
     * adapting the queue size at interval boundaries.
     *
     * When @p hooks carry sinks, the run records one Interval trace
     * record per executed interval (including the final partial one;
     * record count == config_trace.size() and the retired sum equals
     * the run's instruction total exactly), a Decision record at every
     * probe, and Reconfig + ClockChange records for every physical
     * move.  The registry gains `interval.*` counters and an IPC
     * histogram, plus the core's `core.*` metrics.
     */
    IntervalRunResult run(const trace::AppProfile &app,
                          uint64_t instructions, int initial_entries,
                          const obs::Hooks &hooks = {}) const;

  private:
    const AdaptiveIqModel *model_;
    IntervalPolicyParams params_;
};

/**
 * Per-interval oracle: for each interval, charge the time of the best
 * candidate configuration.  When @p charge_switches is set,
 * @p switch_penalty_cycles cycles at the new clock are charged
 * whenever the winning configuration changes.
 *
 * With @p one_pass (the default) a single ooo::WindowSweeper walk
 * scores every candidate: each counterfactual lane advances through
 * every interval to its own chained issue target (exactly the stop
 * rule of CoreModel::step(), overshoot chaining included), so the
 * per-interval (cycles, instructions) table -- and therefore the
 * winner reduction, trace, counters and result -- is bit-identical to
 * the per-candidate lane oracle while walking the op stream once
 * instead of once per candidate (docs/PERF.md).  The walk is serial;
 * callers scale across applications or representatives instead.
 *
 * With @p one_pass off, the candidate lanes are independent CoreModel
 * simulations fanned across @p jobs worker threads; results are
 * bit-identical for every job count (the winner reduction is serial,
 * in candidate order).
 *
 * Observation: when @p hooks carry sinks, the serial reduction emits
 * one Interval record per interval (the winning lane's cost) and a
 * Reconfig record whenever the winner changes; emission happens on
 * the orchestrator thread only, so the trace is identical for every
 * @p jobs and for both engines.
 */
IntervalRunResult runIntervalOracle(
    const AdaptiveIqModel &model, const trace::AppProfile &app,
    uint64_t instructions, const std::vector<int> &candidates,
    uint64_t interval_instrs, bool charge_switches,
    Cycles switch_penalty_cycles = kClockSwitchPenaltyCycles,
    int jobs = 1, const obs::Hooks &hooks = {}, bool one_pass = true);

} // namespace cap::core

#endif // CAPSIM_CORE_INTERVAL_CONTROLLER_H
