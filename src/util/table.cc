#include "table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "json.h"
#include "status.h"

namespace cap {

std::string
Cell::str() const
{
    if (std::holds_alternative<std::string>(value_))
        return std::get<std::string>(value_);
    if (std::holds_alternative<int64_t>(value_))
        return std::to_string(std::get<int64_t>(value_));
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision_,
                  std::get<double>(value_));
    return buf;
}

void
TableWriter::setHeader(std::vector<std::string> header)
{
    capAssert(rows_.empty(), "header must be set before rows");
    header_ = std::move(header);
}

std::string
Cell::jsonStr() const
{
    if (std::holds_alternative<double>(value_) &&
        !std::isfinite(std::get<double>(value_))) {
        return "null";
    }
    if (!std::holds_alternative<std::string>(value_))
        return str();
    return json::quote(std::get<std::string>(value_));
}

void
TableWriter::addRow(std::vector<Cell> row)
{
    capAssert(header_.empty() || row.size() == header_.size(),
              "row width %zu != header width %zu",
              row.size(), header_.size());
    rows_.push_back(std::move(row));
}

void
TableWriter::renderAscii(std::ostream &os) const
{
    std::vector<std::vector<std::string>> rendered;
    rendered.reserve(rows_.size());
    for (const auto &row : rows_) {
        std::vector<std::string> cells;
        cells.reserve(row.size());
        for (const Cell &cell : row)
            cells.push_back(cell.str());
        rendered.push_back(std::move(cells));
    }

    size_t cols = header_.size();
    for (const auto &row : rendered)
        cols = std::max(cols, row.size());
    std::vector<size_t> widths(cols, 0);
    for (size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rendered) {
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto rule = [&]() {
        os << '+';
        for (size_t c = 0; c < cols; ++c)
            os << std::string(widths[c] + 2, '-') << '+';
        os << '\n';
    };
    auto line = [&](const std::vector<std::string> &cells) {
        os << '|';
        for (size_t c = 0; c < cols; ++c) {
            std::string text = c < cells.size() ? cells[c] : "";
            os << ' ' << text << std::string(widths[c] - text.size() + 1, ' ')
               << '|';
        }
        os << '\n';
    };

    os << "== " << title_ << " ==\n";
    rule();
    if (!header_.empty()) {
        line(header_);
        rule();
    }
    for (const auto &row : rendered)
        line(row);
    rule();
}

namespace {

std::string
csvEscape(const std::string &text)
{
    bool needs_quotes = text.find_first_of(",\"\n") != std::string::npos;
    if (!needs_quotes)
        return text;
    std::string out = "\"";
    for (char ch : text) {
        if (ch == '"')
            out += '"';
        out += ch;
    }
    out += '"';
    return out;
}

} // namespace

void
TableWriter::renderCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &cells) {
        for (size_t c = 0; c < cells.size(); ++c) {
            if (c)
                os << ',';
            os << csvEscape(cells[c]);
        }
        os << '\n';
    };
    if (!header_.empty())
        emit(header_);
    for (const auto &row : rows_) {
        std::vector<std::string> cells;
        cells.reserve(row.size());
        for (const Cell &cell : row)
            cells.push_back(cell.str());
        emit(cells);
    }
}

void
TableWriter::renderJson(std::ostream &os, int indent) const
{
    capAssert(!header_.empty(), "JSON rendering needs a header");
    std::string pad(static_cast<size_t>(std::max(indent, 0)), ' ');
    os << "[";
    for (size_t r = 0; r < rows_.size(); ++r) {
        os << (r ? ",\n" : "\n") << pad << "  {";
        for (size_t c = 0; c < rows_[r].size(); ++c) {
            if (c)
                os << ", ";
            os << Cell(header_[c]).jsonStr() << ": "
               << rows_[r][c].jsonStr();
        }
        os << '}';
    }
    os << '\n' << pad << ']';
}

void
TableWriter::renderJsonMap(std::ostream &os, int indent) const
{
    std::string pad(static_cast<size_t>(std::max(indent, 0)), ' ');
    os << "{";
    for (size_t r = 0; r < rows_.size(); ++r) {
        capAssert(rows_[r].size() == 2,
                  "renderJsonMap needs (key, value) rows, got width %zu",
                  rows_[r].size());
        os << (r ? ",\n" : "\n") << pad << "  "
           << rows_[r][0].jsonStr() << ": " << rows_[r][1].jsonStr();
    }
    os << '\n' << pad << '}';
}

} // namespace cap
