#include "stack_sim.h"

#include <algorithm>
#include <cstring>

#include "util/status.h"

namespace cap::cache {

StackSimulator::StackSimulator(const HierarchyGeometry &geometry)
    : geometry_(geometry)
{
    geometry_.validate();
    total_ways_ = geometry_.totalWays();
    // Entries pack the dirty bit into bit 0, so the tag must fit in 63
    // bits: tag = addr / (block_bytes * sets) needs block*sets >= 2.
    capAssert(static_cast<uint64_t>(geometry_.block_bytes) *
                      geometry_.sets() >=
                  2,
              "geometry too small to pack tags");
    entries_.assign(geometry_.sets() * static_cast<uint64_t>(total_ways_),
                    0);
    sizes_.assign(geometry_.sets(), 0);
    depth_hist_.assign(static_cast<size_t>(total_ways_), 0);
}

void
StackSimulator::reset()
{
    std::fill(sizes_.begin(), sizes_.end(), 0);
    std::fill(depth_hist_.begin(), depth_hist_.end(), 0);
    refs_ = 0;
    misses_ = 0;
    writebacks_ = 0;
}

void
StackSimulator::access(const trace::TraceRecord &record)
{
    accessBatch(&record, 1);
}

void
StackSimulator::accessBatch(const trace::TraceRecord *records,
                            uint64_t count)
{
    const int total = total_ways_;
    refs_ += count;
    for (uint64_t r = 0; r < count; ++r) {
        const trace::TraceRecord &record = records[r];
        uint64_t index = geometry_.setIndex(record.addr);
        uint64_t tag = geometry_.tag(record.addr);
        uint64_t *stack =
            &entries_[index * static_cast<uint64_t>(total)];
        int size = sizes_[index];
        uint64_t dirty = record.is_write ? 1u : 0u;

        int depth = -1;
        for (int d = 0; d < size; ++d) {
            if ((stack[d] >> 1) == tag) {
                depth = d;
                break;
            }
        }

        if (depth >= 0) {
            // Hit at recency depth `depth`: L1 for boundaries whose
            // l1Ways exceeds it, L2 otherwise.  Move to front,
            // accumulating dirtiness.
            ++depth_hist_[static_cast<size_t>(depth)];
            uint64_t entry = stack[depth] | dirty;
            std::memmove(stack + 1, stack,
                         static_cast<size_t>(depth) * sizeof(uint64_t));
            stack[0] = entry;
            continue;
        }

        // Miss for every boundary.  A full set evicts the overall LRU
        // (recency depth total-1) -- the same victim, and the same
        // writeback decision, for every boundary placement.
        ++misses_;
        if (size == total) {
            writebacks_ += stack[total - 1] & 1;
            std::memmove(stack + 1, stack,
                         static_cast<size_t>(total - 1) *
                             sizeof(uint64_t));
        } else {
            std::memmove(stack + 1, stack,
                         static_cast<size_t>(size) * sizeof(uint64_t));
            sizes_[index] = static_cast<uint16_t>(size + 1);
        }
        stack[0] = (tag << 1) | dirty;
    }
}

CacheStats
StackSimulator::statsFor(int l1_increments) const
{
    capAssert(l1_increments >= 1 &&
              l1_increments < geometry_.increments,
              "boundary %d out of range", l1_increments);
    int l1_ways = geometry_.l1Ways(l1_increments);
    CacheStats stats;
    stats.refs = refs_;
    for (int d = 0; d < total_ways_; ++d) {
        if (d < l1_ways)
            stats.l1_hits += depth_hist_[static_cast<size_t>(d)];
        else
            stats.l2_hits += depth_hist_[static_cast<size_t>(d)];
    }
    stats.misses = misses_;
    stats.writebacks = writebacks_;
    // Static cold-start runs keep L1 full whenever L2 is non-empty, so
    // every L2 hit takes the swap path (docs/PERF.md section 3).
    stats.swaps = stats.l2_hits;
    return stats;
}

std::vector<CacheStats>
StackSimulator::statsAll() const
{
    std::vector<CacheStats> all;
    all.reserve(static_cast<size_t>(geometry_.increments - 1));
    for (int k = 1; k < geometry_.increments; ++k)
        all.push_back(statsFor(k));
    return all;
}

BoundarySweeper::BoundarySweeper(const HierarchyGeometry &geometry,
                                 int l1_increments)
    : stack_(geometry), boundary_(l1_increments)
{
    capAssert(l1_increments >= 1 &&
              l1_increments < stack_.geometry().increments,
              "boundary %d out of range", l1_increments);
}

void
BoundarySweeper::setBoundary(int l1_increments)
{
    capAssert(l1_increments >= 1 &&
              l1_increments < stack_.geometry().increments,
              "boundary %d out of range", l1_increments);
    if (l1_increments == boundary_)
        return;
    if (!fallback_ && stack_.refs() > 0)
        engageFallback();
    boundary_ = l1_increments;
    if (live_)
        live_->setBoundary(l1_increments);
}

void
BoundarySweeper::engageFallback()
{
    // The stack property breaks the moment the live boundary moves
    // mid-run: replay the recorded history through a real hierarchy
    // (trivially exact) and continue the live lane on it.  The
    // counterfactual stack lanes stay untouched -- and exact.
    fallback_ = true;
    live_ = std::make_unique<ExclusiveHierarchy>(stack_.geometry(),
                                                 boundary_);
    for (const trace::TraceRecord &record : history_)
        live_->access(record);
    fallback_replayed_ = history_.size();
    history_.clear();
    history_.shrink_to_fit();
}

void
BoundarySweeper::access(const trace::TraceRecord &record)
{
    accessBatch(&record, 1);
}

void
BoundarySweeper::accessBatch(const trace::TraceRecord *records,
                             uint64_t count)
{
    stack_.accessBatch(records, count);
    if (fallback_) {
        for (uint64_t i = 0; i < count; ++i)
            live_->access(records[i]);
    } else {
        history_.insert(history_.end(), records, records + count);
    }
}

CacheStats
BoundarySweeper::liveStats() const
{
    return fallback_ ? live_->stats() : stack_.statsFor(boundary_);
}

} // namespace cap::cache
