#include "adaptive_vpred.h"

#include <algorithm>
#include <map>

#include "core/adaptive_iq.h"
#include "core/machine.h"
#include "ooo/core_model.h"
#include "ooo/stream.h"
#include "timing/issue_logic.h"
#include "util/status.h"

namespace cap::core {

namespace {

// Table read path at the 0.25 um reference, ns.  Value-prediction
// rows are wide (64-bit value + stride + confidence), so the read is
// slower than a branch-counter table of equal entry count; tables up
// to 2K entries fit under the 64-entry queue's cycle at 0.18 um.
constexpr double kReadFixed = 0.42;
constexpr double kReadPerLog2Entry = 0.030;
constexpr double kReadWirePerKEntry = 0.040;

} // namespace

ooo::ValueBehavior
vpredBehaviorFor(const std::string &app_name)
{
    using ooo::ValueBehavior;
    static const std::map<std::string, ValueBehavior> exceptions = {
        // Loop-dominated fp codes: few sites, strongly strided.
        {"tomcatv", {256, 0.85, 0.7}},
        {"swim", {256, 0.85, 0.7}},
        {"mgrid", {320, 0.80, 0.7}},
        {"applu", {384, 0.78, 0.7}},
        {"appcg", {192, 0.80, 0.7}},
        {"fpppp", {224, 0.75, 0.7}},
        {"turb3d", {512, 0.70, 0.8}},
        // Irregular integer codes: many sites, less stride structure.
        {"gcc", {4096, 0.40, 0.8}},
        {"go", {4096, 0.35, 0.8}},
        {"vortex", {3072, 0.45, 0.8}},
        {"perl", {2048, 0.45, 0.8}},
        {"compress", {768, 0.50, 0.8}},
    };
    auto it = exceptions.find(app_name);
    if (it != exceptions.end())
        return it->second;
    return ValueBehavior{};
}

AdaptiveVpredModel::AdaptiveVpredModel(const timing::Technology &tech)
    : tech_(&tech)
{
}

std::vector<int>
AdaptiveVpredModel::studySizes()
{
    return {256, 512, 1024, 2048, 4096};
}

Nanoseconds
AdaptiveVpredModel::lookupNs(int entries) const
{
    capAssert(entries >= 2 && isPowerOfTwo(static_cast<uint64_t>(entries)),
              "table entries must be a power of two");
    double log2_entries =
        static_cast<double>(floorLog2(static_cast<uint64_t>(entries)));
    return tech_->deviceScale() *
               (kReadFixed + kReadPerLog2Entry * log2_entries) +
           kReadWirePerKEntry * static_cast<double>(entries) / 1024.0;
}

VpredPerf
AdaptiveVpredModel::evaluate(const trace::AppProfile &app, int entries,
                             uint64_t instructions,
                             int queue_entries) const
{
    capAssert(instructions > 0, "evaluation needs instructions");

    // Coverage from the application's value stream.
    ooo::ValueBehavior behavior = vpredBehaviorFor(app.name);
    ooo::ValueStream value_stream(behavior, app.seed ^ 0x5a1eULL);
    ooo::StrideValuePredictor predictor(entries);
    uint64_t value_samples = std::max<uint64_t>(instructions / 4, 20000);
    for (uint64_t i = 0; i < value_samples; ++i)
        predictor.predictAndUpdate(value_stream.next());

    VpredPerf perf;
    perf.entries = entries;
    perf.coverage = predictor.stats().coverage();
    perf.lookup_ns = lookupNs(entries);
    perf.dep_break_prob = perf.coverage * kOperandFactor;

    // Machine run with prediction applied.
    ooo::InstructionStream stream(app.ilp, app.seed);
    ooo::CoreParams params;
    params.queue_entries = queue_entries;
    params.dispatch_width = IqMachine::kDispatchWidth;
    params.issue_width = IqMachine::kIssueWidth;
    params.dep_break_prob = perf.dep_break_prob;
    params.seed = app.seed ^ 0xdeb1ULL;
    ooo::CoreModel model(stream, params);
    perf.ipc = model.step(instructions).ipc();

    // Joint worst-case clock: queue wakeup/select vs table read.
    timing::IssueLogicModel issue_logic(*tech_);
    Nanoseconds cycle =
        std::max(issue_logic.cycleTime(queue_entries), perf.lookup_ns);
    perf.tpi_ns = cycle / perf.ipc;
    return perf;
}

} // namespace cap::core
