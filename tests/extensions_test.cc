/**
 * @file
 * Tests for the paper-motivated extensions: TLB, branch predictors,
 * the two-level (backup) queue, the asynchronous cache mode,
 * multiprogrammed execution, profile-guided schedules, the concert
 * study, and trace file I/O.
 */

#include <cstdio>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "cache/tlb.h"
#include "core/adaptive_bpred.h"
#include "core/adaptive_tlb.h"
#include "core/async_cache.h"
#include "core/backup_queue.h"
#include "core/concert.h"
#include "core/multiprogram.h"
#include "core/profile_guided.h"
#include "ooo/branch_predictor.h"
#include "ooo/two_level_queue.h"
#include "trace/file_trace.h"
#include "trace/stream.h"
#include "trace/workloads.h"

namespace cap {
namespace {

// ---------------------------------------------------------------------
// Tlb
// ---------------------------------------------------------------------

TEST(TlbTest, ColdMissThenHit)
{
    cache::Tlb tlb(4);
    EXPECT_FALSE(tlb.access(0x10000));
    EXPECT_TRUE(tlb.access(0x10000));
    // Same page, different offset.
    EXPECT_TRUE(tlb.access(0x10000 + 100));
    EXPECT_EQ(tlb.stats().accesses, 3u);
    EXPECT_EQ(tlb.stats().misses, 1u);
}

TEST(TlbTest, LruReplacement)
{
    cache::Tlb tlb(2, 8192);
    tlb.accessPage(1);
    tlb.accessPage(2);
    tlb.accessPage(1); // 2 is now LRU
    tlb.accessPage(3); // evicts 2
    EXPECT_TRUE(tlb.accessPage(1));
    EXPECT_FALSE(tlb.accessPage(2));
}

TEST(TlbTest, CapacityRespected)
{
    cache::Tlb tlb(8);
    for (uint64_t page = 0; page < 100; ++page)
        tlb.accessPage(page);
    EXPECT_EQ(tlb.occupancy(), 8);
}

TEST(TlbTest, ShrinkEvictsLruTail)
{
    cache::Tlb tlb(8);
    for (uint64_t page = 0; page < 8; ++page)
        tlb.accessPage(page);
    // Page 7 is MRU; pages 0..3 are the LRU tail.
    tlb.resize(4);
    EXPECT_EQ(tlb.occupancy(), 4);
    EXPECT_TRUE(tlb.accessPage(7));
    EXPECT_FALSE(tlb.accessPage(0));
}

TEST(TlbTest, GrowKeepsTranslations)
{
    cache::Tlb tlb(4);
    for (uint64_t page = 0; page < 4; ++page)
        tlb.accessPage(page);
    tlb.resize(16);
    EXPECT_EQ(tlb.occupancy(), 4);
    for (uint64_t page = 0; page < 4; ++page)
        EXPECT_TRUE(tlb.accessPage(page));
}

// ---------------------------------------------------------------------
// Branch predictors
// ---------------------------------------------------------------------

TEST(BranchPredictorTest, BimodalLearnsBias)
{
    ooo::BimodalPredictor predictor(64);
    ooo::BranchRecord always_taken{0x4000, true};
    for (int i = 0; i < 100; ++i)
        predictor.predictAndUpdate(always_taken);
    // After warm-up the counter saturates: near-perfect accuracy.
    EXPECT_LT(predictor.stats().mispredictRatio(), 0.05);
}

TEST(BranchPredictorTest, AliasingHurtsSmallTables)
{
    // Two strongly-biased branches that collide in a 2-entry table
    // but not in a large one.
    auto run = [](int entries) {
        ooo::BimodalPredictor predictor(entries);
        for (int i = 0; i < 2000; ++i) {
            predictor.predictAndUpdate({0x4000, true});
            predictor.predictAndUpdate({0x4008, false});
        }
        return predictor.stats().mispredictRatio();
    };
    EXPECT_GT(run(2), 0.3);
    EXPECT_LT(run(1024), 0.05);
}

TEST(BranchPredictorTest, GshareTracksGlobalPattern)
{
    // A single branch alternating T/N is perfectly predictable from
    // one history bit.
    ooo::GsharePredictor predictor(1024, 8);
    for (int i = 0; i < 4000; ++i)
        predictor.predictAndUpdate({0x4000, (i & 1) == 0});
    EXPECT_LT(predictor.stats().mispredictRatio(), 0.05);
}

TEST(BranchPredictorTest, StreamDeterministicAndBounded)
{
    ooo::BranchBehavior behavior;
    ooo::BranchStream a(behavior, 3), b(behavior, 3);
    for (int i = 0; i < 2000; ++i) {
        ooo::BranchRecord ra = a.next(), rb = b.next();
        ASSERT_EQ(ra.pc, rb.pc);
        ASSERT_EQ(ra.taken, rb.taken);
        ASSERT_GE(ra.pc, 0x400000u);
        ASSERT_LT(ra.pc, 0x400000u + 4u * static_cast<uint64_t>(
                                              behavior.static_branches));
    }
}

TEST(AdaptiveBpredTest, LookupMonotoneAndMispredNonincreasing)
{
    core::AdaptiveBpredModel model;
    const trace::AppProfile &gcc = trace::findApp("gcc");
    double prev_lookup = 0.0;
    double prev_miss = 1.0;
    for (int entries : core::AdaptiveBpredModel::studySizes()) {
        core::BpredPerf perf = model.evaluate(gcc, entries, 60000);
        EXPECT_GT(perf.lookup_ns, prev_lookup);
        EXPECT_LE(perf.mispredict_ratio, prev_miss + 0.02);
        prev_lookup = perf.lookup_ns;
        prev_miss = perf.mispredict_ratio;
    }
}

TEST(AdaptiveBpredTest, LoopCodesArePredictable)
{
    core::AdaptiveBpredModel model;
    core::BpredPerf fp =
        model.evaluate(trace::findApp("tomcatv"), 1024, 50000);
    core::BpredPerf integer =
        model.evaluate(trace::findApp("go"), 1024, 50000);
    EXPECT_LT(fp.mispredict_ratio, 0.05);
    EXPECT_GT(integer.mispredict_ratio, 0.15);
}

// ---------------------------------------------------------------------
// Adaptive TLB
// ---------------------------------------------------------------------

TEST(AdaptiveTlbTest, MissRatioNonincreasingInEntries)
{
    core::AdaptiveTlbModel model;
    for (const char *name : {"li", "gcc", "stereo", "appcg"}) {
        double prev = 1.0;
        for (int entries : core::AdaptiveTlbModel::studySizes()) {
            core::TlbPerf perf =
                model.evaluate(trace::findApp(name), entries, 60000);
            EXPECT_LE(perf.miss_ratio, prev + 0.01) << name << entries;
            prev = perf.miss_ratio;
        }
    }
}

TEST(AdaptiveTlbTest, PageDiversityAcrossApps)
{
    core::AdaptiveTlbModel model;
    // li's pages fit the smallest TLB; appcg's do not.
    double li32 =
        model.evaluate(trace::findApp("li"), 32, 60000).miss_ratio;
    double appcg32 =
        model.evaluate(trace::findApp("appcg"), 32, 60000).miss_ratio;
    EXPECT_LT(li32, 0.01);
    EXPECT_GT(appcg32, 0.2);
    // A 256-entry TLB absorbs appcg's pages.
    double appcg256 =
        model.evaluate(trace::findApp("appcg"), 256, 60000).miss_ratio;
    EXPECT_LT(appcg256, 0.01);
}

TEST(AdaptiveTlbTest, LookupScalesWithEntries)
{
    core::AdaptiveTlbModel model;
    EXPECT_LT(model.lookupNs(32), model.lookupNs(256));
    // 256 entries must exceed the smallest cache cycle (the clock
    // coupling the concert study explores).
    core::AdaptiveCacheModel cache_model;
    EXPECT_GT(model.lookupNs(256),
              cache_model.boundaryTiming(1).cycle_ns);
    EXPECT_LT(model.lookupNs(128),
              cache_model.boundaryTiming(1).cycle_ns);
}

// ---------------------------------------------------------------------
// Two-level (backup) queue
// ---------------------------------------------------------------------

trace::IlpBehavior
midWorkload()
{
    trace::IlpPhase phase;
    phase.min_dep_distance = 8;
    phase.mean_dep_distance = 12.0;
    phase.second_src_prob = 0.2;
    phase.mean_dep_distance2 = 24.0;
    phase.long_lat_prob = 0.10;
    phase.long_lat_cycles = 13;
    phase.short_lat_cycles = 1;
    trace::IlpBehavior behavior;
    behavior.phases = {phase};
    behavior.schedule = {{0, 1'000'000}};
    return behavior;
}

TEST(TwoLevelQueueTest, IpcBetweenSmallAndLargePlainQueues)
{
    trace::IlpBehavior behavior = midWorkload();

    auto plain_ipc = [&](int entries) {
        ooo::InstructionStream stream(behavior, 9);
        ooo::CoreParams params;
        params.queue_entries = entries;
        ooo::CoreModel model(stream, params);
        return model.step(60000).ipc();
    };
    double small = plain_ipc(16);
    double large = plain_ipc(128);
    ASSERT_GT(large, small * 1.2);

    ooo::InstructionStream stream(behavior, 9);
    ooo::TwoLevelParams params;
    params.ondeck_entries = 16;
    params.backup_entries = 112;
    ooo::TwoLevelCoreModel model(stream, params);
    double two_level = model.step(60000).ipc();

    EXPECT_GT(two_level, small);
    EXPECT_LT(two_level, large * 1.02);
}

TEST(TwoLevelQueueTest, OccupancyBounds)
{
    trace::IlpBehavior behavior = midWorkload();
    ooo::InstructionStream stream(behavior, 10);
    ooo::TwoLevelParams params;
    params.ondeck_entries = 8;
    params.backup_entries = 24;
    ooo::TwoLevelCoreModel model(stream, params);
    for (int batch = 0; batch < 20; ++batch) {
        model.step(500);
        EXPECT_LE(model.ondeckOccupancy(), 8);
        EXPECT_LE(model.backupOccupancy(), 24 + 8);
        EXPECT_GE(model.ondeckOccupancy(), 0);
    }
}

TEST(TwoLevelQueueTest, ZeroBackupBehavesLikePlainQueue)
{
    trace::IlpBehavior behavior = midWorkload();
    ooo::InstructionStream s1(behavior, 11), s2(behavior, 11);
    ooo::TwoLevelParams two_level_params;
    two_level_params.ondeck_entries = 32;
    two_level_params.backup_entries = 0;
    ooo::TwoLevelCoreModel two_level(s1, two_level_params);
    ooo::CoreParams plain_params;
    plain_params.queue_entries = 32;
    ooo::CoreModel plain(s2, plain_params);
    double ipc_two_level = two_level.step(40000).ipc();
    double ipc_plain = plain.step(40000).ipc();
    // Dispatch steering differs slightly, but the two must be close.
    EXPECT_NEAR(ipc_two_level, ipc_plain, ipc_plain * 0.15);
}

TEST(BackupQueueModelTest, ClocksLikeTheOndeckSection)
{
    core::BackupQueueModel model;
    core::AdaptiveIqModel plain;
    // 5% transfer-port overhead on the 16-entry cycle.
    EXPECT_NEAR(model.cycleNs(16), 1.05 * plain.cycleNs(16), 1e-9);
    ooo::TwoLevelParams params;
    params.ondeck_entries = 16;
    params.backup_entries = 112;
    core::BackupQueuePerf perf =
        model.evaluate(trace::findApp("li"), params, 50000);
    EXPECT_GT(perf.ipc, 0.0);
    EXPECT_NEAR(perf.tpi_ns, perf.cycle_ns / perf.ipc, 1e-12);
}

TEST(TwoLevelQueueDeathTest, RejectsBadParameters)
{
    trace::IlpBehavior behavior = midWorkload();
    ooo::InstructionStream stream(behavior, 12);
    ooo::TwoLevelParams params;
    params.ondeck_entries = 0;
    EXPECT_DEATH(ooo::TwoLevelCoreModel(stream, params), "on-deck");
    params.ondeck_entries = 16;
    params.transfer_latency = 0;
    EXPECT_DEATH(ooo::TwoLevelCoreModel(stream, params), "transfer");
}

// ---------------------------------------------------------------------
// Asynchronous cache mode
// ---------------------------------------------------------------------

TEST(AsyncCacheTest, AverageAccessBelowWorstCase)
{
    core::AdaptiveCacheModel model;
    core::AsyncCacheModel async(model);
    core::AsyncCachePerf perf =
        async.evaluate(trace::findApp("li"), 8, 40000);
    EXPECT_GT(perf.avg_access_ns, 0.0);
    EXPECT_LT(perf.avg_access_ns, perf.worst_access_ns);
}

TEST(AsyncCacheTest, BeatsSynchronousAtLargeBoundaries)
{
    // The async claim: big structures cost only what is actually
    // accessed, so growing the boundary is (nearly) free.
    core::AdaptiveCacheModel model;
    core::AsyncCacheModel async(model);
    const trace::AppProfile &app = trace::findApp("li");
    core::CachePerf sync_k8 = model.evaluate(app, 8, 40000);
    core::AsyncCachePerf async_k8 = async.evaluate(app, 8, 40000);
    EXPECT_LT(async_k8.tpi_ns, sync_k8.tpi_ns);
    // And the async TPI at k=8 stays near the fast-clock k=1 level.
    core::AsyncCachePerf async_k1 = async.evaluate(app, 1, 40000);
    EXPECT_LT(async_k8.tpi_ns, async_k1.tpi_ns * 1.15);
}

// ---------------------------------------------------------------------
// Multiprogrammed execution
// ---------------------------------------------------------------------

TEST(MultiprogramTest, AccountsAllWork)
{
    core::AdaptiveCacheModel model;
    std::vector<trace::AppProfile> apps = {trace::findApp("li"),
                                           trace::findApp("gcc")};
    core::MultiprogramParams params;
    params.quantum_refs = 10000;
    core::MultiprogramResult result =
        runMultiprogram(model, apps, 50000, params);
    ASSERT_EQ(result.apps.size(), 2u);
    for (const core::MultiprogramAppResult &app : result.apps) {
        EXPECT_EQ(app.refs, 50000u);
        EXPECT_GT(app.instructions, 0u);
        EXPECT_GT(app.tpi(), 0.0);
    }
    // Round-robin with 5 quanta per app: 9 switches.
    EXPECT_EQ(result.switches, 9);
    EXPECT_GT(result.switch_overhead_ns, 0.0);
    EXPECT_GT(result.total_time_ns, result.switch_overhead_ns);
}

TEST(MultiprogramTest, AdaptiveBeatsFixedOnDiverseMix)
{
    core::AdaptiveCacheModel model;
    std::vector<trace::AppProfile> apps = {trace::findApp("li"),
                                           trace::findApp("stereo")};
    core::MultiprogramParams adaptive;
    core::MultiprogramParams fixed;
    fixed.boundaries = {2};
    core::MultiprogramResult a =
        runMultiprogram(model, apps, 60000, adaptive);
    core::MultiprogramResult f = runMultiprogram(model, apps, 60000, fixed);
    EXPECT_LT(a.tpi(), f.tpi());
    // stereo must have been given a large L1.
    EXPECT_GE(a.apps[1].boundary, 5);
}

TEST(MultiprogramTest, PerAppBoundariesHonored)
{
    core::AdaptiveCacheModel model;
    std::vector<trace::AppProfile> apps = {trace::findApp("li"),
                                           trace::findApp("gcc")};
    core::MultiprogramParams params;
    params.boundaries = {3, 5};
    core::MultiprogramResult result =
        runMultiprogram(model, apps, 30000, params);
    EXPECT_EQ(result.apps[0].boundary, 3);
    EXPECT_EQ(result.apps[1].boundary, 5);
}

// ---------------------------------------------------------------------
// Profile-guided schedules
// ---------------------------------------------------------------------

TEST(ProfileGuidedTest, StablePhaseYieldsSingleSegment)
{
    core::AdaptiveIqModel model;
    core::ConfigSchedule schedule = core::buildScheduleFromProfile(
        model, trace::findApp("li"), 200000,
        core::AdaptiveIqModel::studySizes());
    ASSERT_GE(schedule.size(), 1u);
    EXPECT_LE(schedule.size(), 2u);
    EXPECT_EQ(schedule.front().start_interval, 0u);
}

TEST(ProfileGuidedTest, PhasedAppProducesSegmentsAndRuns)
{
    core::AdaptiveIqModel model;
    const trace::AppProfile &turb3d = trace::findApp("turb3d");
    core::ConfigSchedule schedule = core::buildScheduleFromProfile(
        model, turb3d, 1'500'000, core::AdaptiveIqModel::studySizes());
    EXPECT_GE(schedule.size(), 2u);
    core::IntervalRunResult run =
        core::runWithSchedule(model, turb3d, 1'500'000, schedule);
    EXPECT_EQ(run.instructions, 1'500'000u - 1'500'000u %
                                    core::kIntervalInstructions);
    EXPECT_EQ(run.reconfigurations,
              static_cast<int>(schedule.size()) - 1);
    // The schedule must at least be competitive with the 64-entry
    // conventional configuration.
    double conv = model.evaluate(turb3d, 64, 1'500'000).tpi_ns;
    EXPECT_LT(run.tpi(), conv * 1.03);
}

TEST(ProfileGuidedDeathTest, RejectsBadSchedules)
{
    core::AdaptiveIqModel model;
    core::ConfigSchedule empty;
    EXPECT_DEATH(core::runWithSchedule(model, trace::findApp("li"), 10000,
                                       empty),
                 "empty");
    core::ConfigSchedule unordered{{5, 64}, {5, 16}};
    EXPECT_DEATH(core::runWithSchedule(model, trace::findApp("li"), 10000,
                                       unordered),
                 "increasing");
}

// ---------------------------------------------------------------------
// Concert study
// ---------------------------------------------------------------------

TEST(ConcertTest, InConcertBeatsSingleStructureAdaptivity)
{
    std::vector<trace::AppProfile> apps = {
        trace::findApp("li"), trace::findApp("gcc"),
        trace::findApp("stereo"), trace::findApp("appcg"),
        trace::findApp("tomcatv")};
    core::ConcertStudy study = core::runConcertStudy(apps, 60000);

    ASSERT_EQ(study.configs.size(), 8u * 4u * 5u);
    ASSERT_EQ(study.perf.size(), apps.size());

    double all = study.selection.adaptive_mean_tpi;
    double conv = study.selection.conventional_mean_tpi;
    EXPECT_LT(all, conv);
    for (int which : {0, 1, 2}) {
        double single = study.singleStructureAdaptiveMeanTpi(which);
        EXPECT_LE(all, single + 1e-12) << which;
        EXPECT_LE(single, conv + 1e-12) << which;
    }
}

TEST(ConcertTest, TpiDecomposesIntoComponents)
{
    std::vector<trace::AppProfile> apps = {trace::findApp("gcc")};
    core::ConcertStudy study = core::runConcertStudy(apps, 40000);
    for (const core::ConcertPerf &perf : study.perf[0]) {
        EXPECT_NEAR(perf.tpi_ns,
                    perf.base_ns + perf.cache_miss_ns + perf.tlb_walk_ns +
                        perf.mispredict_ns,
                    1e-12);
        EXPECT_GE(perf.cycle_ns,
                  core::AdaptiveCacheModel()
                      .boundaryTiming(perf.config.cache_boundary)
                      .cycle_ns - 1e-12);
    }
}

TEST(ConcertTest, ConfigLabels)
{
    core::ConcertConfig config{2, 64, 2048};
    EXPECT_EQ(config.label(), "16KB/64tlb/2048bp");
}

// ---------------------------------------------------------------------
// Trace file I/O
// ---------------------------------------------------------------------

TEST(FileTraceTest, RoundTripPreservesRecords)
{
    const trace::AppProfile &app = trace::findApp("li");
    std::string path = testing::TempDir() + "/capsim_trace_test.din";

    trace::SyntheticTraceSource writer_source(app.cache, app.seed, 5000);
    uint64_t written = trace::writeTraceFile(path, writer_source, 5000);
    EXPECT_EQ(written, 5000u);

    trace::SyntheticTraceSource reference(app.cache, app.seed, 5000);
    trace::FileTraceSource reader(path);
    trace::TraceRecord from_file, expected;
    uint64_t count = 0;
    while (reader.next(from_file)) {
        ASSERT_TRUE(reference.next(expected));
        ASSERT_EQ(from_file.addr, expected.addr);
        ASSERT_EQ(from_file.is_write, expected.is_write);
        ++count;
    }
    EXPECT_EQ(count, 5000u);
    EXPECT_EQ(reader.skipped(), 0u);
    std::remove(path.c_str());
}

TEST(FileTraceTest, SkipsCommentsIfetchesAndGarbage)
{
    std::string path = testing::TempDir() + "/capsim_trace_mixed.din";
    std::FILE *f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("# comment\n\n0 1000\n2 dead\n1 2000\nbogus line\n"
               "9 3000\n  0 abc\n",
               f);
    std::fclose(f);

    trace::FileTraceSource reader(path);
    trace::TraceRecord record;
    ASSERT_TRUE(reader.next(record));
    EXPECT_EQ(record.addr, 0x1000u);
    EXPECT_FALSE(record.is_write);
    ASSERT_TRUE(reader.next(record));
    EXPECT_EQ(record.addr, 0x2000u);
    EXPECT_TRUE(record.is_write);
    ASSERT_TRUE(reader.next(record));
    EXPECT_EQ(record.addr, 0xabcu);
    EXPECT_FALSE(reader.next(record));
    EXPECT_EQ(reader.produced(), 3u);
    EXPECT_GE(reader.skipped(), 3u);
    std::remove(path.c_str());
}

TEST(FileTraceDeathTest, MissingFileIsFatal)
{
    EXPECT_EXIT(trace::FileTraceSource("/nonexistent/trace.din"),
                testing::ExitedWithCode(1), "cannot open");
}

} // namespace
} // namespace cap
