/**
 * @file
 * Extension bench: the adaptive value-prediction table (Section 2's
 * "structures required for proposed new mechanisms such as value
 * prediction").
 *
 * Coverage is measured on per-application synthetic value streams;
 * confidently predicted operands break dependence edges at dispatch
 * (mispredictions are assumed filtered by the confidence bits), so
 * the numbers are potential-style, like the value-prediction limit
 * studies of the era.
 */

#include <iostream>

#include "bench_common.h"
#include "core/adaptive_iq.h"
#include "core/adaptive_vpred.h"
#include "trace/workloads.h"

int
main()
{
    using namespace cap;
    using namespace cap::bench;

    banner("Extension: adaptive value-prediction table (Section 2)",
           "dataflow-limited codes (appcg, fpppp) gain dramatically "
           "from even a small table; irregular integer codes gain "
           "little; coverage beyond ~1K entries never repays the "
           "read-delay cost, so the adaptive choice stays small");

    core::AdaptiveVpredModel vpred;
    core::AdaptiveIqModel iq;
    uint64_t instrs = iqInstrs();
    std::cout << "instructions per run: " << instrs
              << "; machine: 64-entry queue\n\n";

    TableWriter lookup("Table read delay (0.18um)");
    lookup.setHeader({"entries", "lookup_ns"});
    for (int entries : core::AdaptiveVpredModel::studySizes())
        lookup.addRow({entries, Cell(vpred.lookupNs(entries), 3)});
    emit(lookup);

    TableWriter table("TPI (ns) with value prediction, by table size");
    std::vector<std::string> header{"app", "no_vp"};
    for (int entries : core::AdaptiveVpredModel::studySizes())
        header.push_back(std::to_string(entries));
    header.push_back("best");
    header.push_back("coverage@best");
    table.setHeader(header);

    for (const trace::AppProfile &app : trace::iqStudyApps()) {
        double no_vp = iq.evaluate(app, 64, instrs).tpi_ns;
        std::vector<Cell> row{Cell(app.name), Cell(no_vp, 3)};
        double best = no_vp;
        std::string best_label = "off";
        double best_cov = 0.0;
        for (int entries : core::AdaptiveVpredModel::studySizes()) {
            core::VpredPerf perf = vpred.evaluate(app, entries, instrs);
            row.emplace_back(perf.tpi_ns, 3);
            if (perf.tpi_ns < best) {
                best = perf.tpi_ns;
                best_label = std::to_string(entries);
                best_cov = perf.coverage;
            }
        }
        row.emplace_back(best_label);
        row.emplace_back(best_cov, 2);
        table.addRow(row);
    }
    emit(table);
    return 0;
}
