/**
 * @file
 * Process-technology parameter sets for the delay models.
 *
 * The paper's scaling assumptions (Section 2) are encoded directly:
 * to first order, transistor (buffer) delays scale linearly with
 * feature size while wire delays remain constant.  Layout geometry
 * (cell pitch, and therefore wire length) is evaluated at a fixed
 * 0.25 um reference so that a single unbuffered curve exists per
 * structure, exactly as in Figures 1 and 2.
 */

#ifndef CAPSIM_TIMING_TECHNOLOGY_H
#define CAPSIM_TIMING_TECHNOLOGY_H

#include <string>

#include "util/units.h"

namespace cap::timing {

/**
 * One CMOS process generation.  Wire parasitics are shared constants
 * (wires do not scale, per the paper); device parameters carry the
 * linear feature-size scaling.
 */
class Technology
{
  public:
    /**
     * @param name Display name, e.g. "0.18u".
     * @param feature_um Drawn feature size in microns.
     */
    Technology(std::string name, double feature_um);

    const std::string &name() const { return name_; }
    double featureMicrons() const { return feature_um_; }

    /** Wire resistance per mm (ohm/mm); constant across generations. */
    double wireResistancePerMm() const { return wire_r_per_mm_; }

    /** Wire capacitance per mm (pF/mm); constant across generations. */
    double wireCapacitancePerMm() const { return wire_c_per_mm_; }

    /**
     * Output resistance of a minimum repeater (ohm).  Scales as 1/W
     * with device width held in minimum widths, i.e. constant; the
     * feature-size dependence is carried entirely by bufferTau().
     */
    double bufferResistance() const { return buffer_r_; }

    /** Input capacitance of a minimum repeater (pF); scales linearly. */
    double bufferCapacitance() const;

    /**
     * Intrinsic RC time constant of a minimum repeater (ns).  This is
     * the quantity the paper assumes scales linearly with feature size.
     */
    Nanoseconds bufferTau() const;

    /**
     * Fixed insertion overhead of adopting a repeater methodology
     * (input driver chain and final receiver), in ns.  Scales with
     * feature size.  This is why unbuffered wires win at short lengths.
     */
    Nanoseconds bufferFixedOverhead() const;

    /**
     * Generic scale factor for device-limited delays relative to the
     * 0.25 um reference generation (== feature/0.25).
     */
    double deviceScale() const;

    /** The three generations studied in the paper. */
    static const Technology &um250();
    static const Technology &um180();
    static const Technology &um120();

  private:
    std::string name_;
    double feature_um_;
    double wire_r_per_mm_;
    double wire_c_per_mm_;
    double buffer_r_;
};

/** Reference feature size at which layout geometry is evaluated. */
constexpr double kReferenceFeatureUm = 0.25;

} // namespace cap::timing

#endif // CAPSIM_TIMING_TECHNOLOGY_H
