/**
 * @file
 * Fine-grained (interval-based) adaptation demo -- paper Section 6.
 *
 * Runs the confidence-gated interval controller on a phased workload
 * and prints the configuration the Configuration Manager selected in
 * each region of execution, alongside the fixed-configuration
 * baselines and the per-interval oracle.
 *
 *   ./interval_adaptation [app] [instructions]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/adaptive_iq.h"
#include "core/interval_controller.h"
#include "core/machine.h"
#include "trace/workloads.h"

int
main(int argc, char **argv)
{
    using namespace cap;

    std::string app_name = argc > 1 ? argv[1] : "vortex";
    uint64_t instrs =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1'000'000;
    const trace::AppProfile &app = trace::findApp(app_name);

    core::AdaptiveIqModel model;

    std::printf("Interval-based adaptive instruction queue on %s "
                "(%llu instructions, %llu-instruction intervals)\n\n",
                app.name.c_str(),
                static_cast<unsigned long long>(instrs),
                static_cast<unsigned long long>(
                    core::kIntervalInstructions));

    // Fixed baselines.
    std::printf("fixed configurations:\n");
    double best_fixed = 0.0;
    for (int entries : core::AdaptiveIqModel::studySizes()) {
        core::IqPerf perf = model.evaluate(app, entries, instrs);
        if (best_fixed == 0.0 || perf.tpi_ns < best_fixed)
            best_fixed = perf.tpi_ns;
        std::printf("  %3d entries: %.3f ns/instr\n", entries, perf.tpi_ns);
    }

    // The Section-6 controller.
    core::IntervalPolicyParams params;
    core::IntervalAdaptiveIq controller(model, params);
    core::IntervalRunResult run = controller.run(app, instrs, 64);

    std::printf("\ninterval controller (confidence gate %d, probe "
                "period %d):\n",
                params.confidence_needed, params.probe_period);
    std::printf("  TPI %.3f ns/instr, %d physical reconfigurations, "
                "%d committed moves\n",
                run.tpi(), run.reconfigurations, run.committed_moves);

    // Compress the config trace into regions.
    std::printf("  configuration timeline (intervals x entries): ");
    int current = run.config_trace.empty() ? 0 : run.config_trace[0];
    int span = 0;
    int printed = 0;
    for (int entries : run.config_trace) {
        if (entries == current) {
            ++span;
            continue;
        }
        if (printed++ < 14)
            std::printf("%dx%d ", span, current);
        current = entries;
        span = 1;
    }
    std::printf("%dx%d%s\n", span, current,
                printed >= 14 ? " ..." : "");

    // Oracle bound.
    core::IntervalRunResult oracle = core::runIntervalOracle(
        model, app, instrs, core::AdaptiveIqModel::studySizes(),
        core::kIntervalInstructions, true);
    std::printf("\nper-interval oracle (switches charged): %.3f ns/instr "
                "(%d switches)\n",
                oracle.tpi(), oracle.reconfigurations);
    std::printf("best fixed: %.3f ns/instr\n", best_fixed);
    std::printf("controller recovers %+.1f%% vs best fixed "
                "(oracle bound %+.1f%%)\n",
                100.0 * (1.0 - run.tpi() / best_fixed),
                100.0 * (1.0 - oracle.tpi() / best_fixed));
    return 0;
}
