/**
 * @file
 * Predetermined clock table for a Complexity-Adaptive Processor.
 *
 * Paper Section 4: "The various clock speeds are predetermined based
 * on worst-case timing analysis of each FS and combination of CAS
 * configurations."  The ClockTable captures that analysis: every
 * configuration's required cycle time is the maximum over the fixed
 * structures' delay floor and each adaptive structure's delay in its
 * selected configuration, optionally quantized to the discrete set of
 * clock sources a real holding/multiplexing scheme provides.
 */

#ifndef CAPSIM_TIMING_CLOCK_TABLE_H
#define CAPSIM_TIMING_CLOCK_TABLE_H

#include <cstdint>
#include <string>
#include <vector>

#include "util/units.h"

namespace cap::timing {

/** Cycle-time requirement contributed by one structure. */
struct ClockRequirement
{
    std::string structure;
    Nanoseconds cycle_ns;
};

/** Worst-case clock computation with optional source quantization. */
class ClockTable
{
  public:
    ClockTable() = default;

    /**
     * Set the delay floor imposed by the fixed (non-adaptive)
     * structures; no configuration may clock faster than this.
     */
    void setFixedFloor(Nanoseconds cycle_ns);

    Nanoseconds fixedFloor() const { return fixed_floor_ns_; }

    /**
     * Restrict clocks to multiples of @p step_ns (a discrete PLL-tap /
     * divider scheme).  Zero disables quantization (the default).
     */
    void setQuantizationStep(Nanoseconds step_ns);

    Nanoseconds quantizationStep() const { return quantum_ns_; }

    /**
     * The processor cycle time when the given adaptive-structure
     * requirements are active: max over the fixed floor and every
     * requirement, rounded *up* to the quantization grid (worst-case
     * rule -- a clock may never be faster than the slowest structure
     * needs).
     */
    Nanoseconds cycleFor(const std::vector<ClockRequirement> &reqs) const;

    /** Convenience overload for a single adaptive structure. */
    Nanoseconds cycleFor(Nanoseconds requirement_ns) const;

    /**
     * Number of cycles (at the *new* clock) needed to pause the active
     * clock source and reliably start another (paper Section 4.1:
     * "tens of cycles").
     */
    Cycles switchPenaltyCycles() const { return switch_penalty_; }

    /** Override the clock-switch penalty (for sensitivity studies). */
    void setSwitchPenaltyCycles(Cycles cycles) { switch_penalty_ = cycles; }

  private:
    Nanoseconds fixed_floor_ns_ = 0.0;
    Nanoseconds quantum_ns_ = 0.0;
    Cycles switch_penalty_ = 30;
};

} // namespace cap::timing

#endif // CAPSIM_TIMING_CLOCK_TABLE_H
