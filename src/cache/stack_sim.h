/**
 * @file
 * Single-pass multi-boundary cache simulation (Mattson stack
 * distances) for the movable-boundary exclusive hierarchy.
 *
 * The paper's fixed index/tag mapping (DESIGN.md section 1.5) makes
 * every boundary placement of the 128 KB increment pool index the
 * *same* sets: increments contribute ways only.  Combined with strict
 * LRU inside the pool, the configurations form an inclusion chain, so
 * one pass that tracks each set's recency stack can score every
 * boundary at once:
 *
 *  - ExclusiveHierarchy's replacement policy (L1 hit restamps; L2 hit
 *    swaps with the L1 LRU; miss fills L1, demotes the L1 LRU and
 *    evicts the overall LRU) keeps the pool's stamps a strict
 *    move-to-front recency order over all totalWays() blocks of a set,
 *    with L1 holding exactly the top l1Ways(k) recency positions.
 *  - Hence a reference that finds its block at recency depth d is an
 *    L1 hit for every boundary k with l1Ways(k) > d and an L2 hit for
 *    every smaller boundary; misses, evictions and writebacks do not
 *    depend on the boundary at all.
 *
 * StackSimulator maintains the per-set move-to-front stacks and a
 * depth histogram; statsFor(k) reconstructs the exact CacheStats a
 * cold-started ExclusiveHierarchy with static boundary k would report
 * on the same reference sequence -- bit-identical, including swaps
 * (every L2 hit of a static cold-start run swaps) and writebacks
 * (dirtiness travels with the block in recency order).
 *
 * The one thing the stack property does NOT survive is a mid-run
 * setBoundary(): physical placement then starts to matter (the
 * re-labelled increments expose holes the static invariant rules
 * out).  BoundarySweeper wraps the engine with a self-checking
 * fallback: it behaves as a live reconfigurable hierarchy, serving
 * stats from the stack while the boundary has never moved, and on the
 * first mid-run reconfiguration replays the recorded reference history
 * through a real ExclusiveHierarchy and continues on it -- while the
 * counterfactual all-boundary sweep stays exact (its lanes never
 * reconfigure).  See docs/PERF.md for the full argument.
 */

#ifndef CAPSIM_CACHE_STACK_SIM_H
#define CAPSIM_CACHE_STACK_SIM_H

#include <cstdint>
#include <memory>
#include <vector>

#include "cache/exclusive_hierarchy.h"
#include "cache/geometry.h"
#include "trace/record.h"

namespace cap::cache {

/**
 * The single-pass engine: per-set LRU stacks over the full increment
 * pool plus a service-depth histogram, from which the CacheStats of
 * every static boundary are reconstructed exactly.
 */
class StackSimulator
{
  public:
    explicit StackSimulator(const HierarchyGeometry &geometry);

    const HierarchyGeometry &geometry() const { return geometry_; }

    /** Record one reference into the stacks. */
    void access(const trace::TraceRecord &record);

    /** Record a batch of references (amortizes the call overhead). */
    void accessBatch(const trace::TraceRecord *records, uint64_t count);

    /** References recorded so far. */
    uint64_t refs() const { return refs_; }

    /**
     * Exact CacheStats a cold-started ExclusiveHierarchy with static
     * boundary @p l1_increments would report after the same reference
     * sequence.  O(totalWays) -- reconstruction, not simulation.
     */
    CacheStats statsFor(int l1_increments) const;

    /** statsFor(k) for every boundary k in [1, increments-1]. */
    std::vector<CacheStats> statsAll() const;

    /** Drop all stack state and counters (cold start). */
    void reset();

  private:
    HierarchyGeometry geometry_;
    int total_ways_;
    /** Per-set recency stacks, most-recent first; entry is
     *  (tag << 1) | dirty.  Flat [set * total_ways + depth]. */
    std::vector<uint64_t> entries_;
    /** Valid entries per set. */
    std::vector<uint16_t> sizes_;
    /** depth_hist_[d] = hits whose block sat at recency depth d. */
    std::vector<uint64_t> depth_hist_;
    uint64_t refs_ = 0;
    uint64_t misses_ = 0;
    uint64_t writebacks_ = 0;
};

/**
 * A reconfigurable machine facade with a built-in counterfactual
 * sweep.  While the boundary never moves mid-run, the live machine's
 * stats come straight from the stack engine (one-pass mode) and the
 * reference history is recorded; the first mid-run setBoundary()
 * breaks the stack property, so the sweeper self-checks out: it
 * replays the history through a real ExclusiveHierarchy (exactness
 * preserved by construction) and continues the live simulation on it.
 * The all-boundary counterfactual statsFor()/statsAll() remain exact
 * in both modes, because those static lanes never reconfigure.
 */
class BoundarySweeper
{
  public:
    BoundarySweeper(const HierarchyGeometry &geometry, int l1_increments);

    const HierarchyGeometry &geometry() const { return stack_.geometry(); }

    /** Live boundary. */
    int l1Increments() const { return boundary_; }

    /**
     * Move the live boundary.  A move after the first access engages
     * the fallback (the one-pass stack cannot model it); moves before
     * any reference just re-label the initial boundary.
     */
    void setBoundary(int l1_increments);

    /** Simulate one reference on the live machine (and the stacks). */
    void access(const trace::TraceRecord &record);

    /** Batched access. */
    void accessBatch(const trace::TraceRecord *records, uint64_t count);

    /** Exact stats of the live (possibly reconfigured) machine. */
    CacheStats liveStats() const;

    /** Exact counterfactual stats of static boundary @p k. */
    CacheStats statsFor(int k) const { return stack_.statsFor(k); }

    /** Exact counterfactual stats of every static boundary. */
    std::vector<CacheStats> statsAll() const { return stack_.statsAll(); }

    /** True while the live machine is served by the one-pass stack. */
    bool onePassActive() const { return !fallback_; }

    /** References replayed when the fallback engaged (0 = never). */
    uint64_t fallbackReplayedRefs() const { return fallback_replayed_; }

  private:
    void engageFallback();

    StackSimulator stack_;
    int boundary_;
    bool fallback_ = false;
    uint64_t fallback_replayed_ = 0;
    /** Reference history kept until the fallback decision is final. */
    std::vector<trace::TraceRecord> history_;
    /** Live machine; materialized only after a mid-run reconfig. */
    std::unique_ptr<ExclusiveHierarchy> live_;
};

} // namespace cap::cache

#endif // CAPSIM_CACHE_STACK_SIM_H
