/**
 * @file
 * Lightweight statistics accumulators used throughout the simulators.
 */

#ifndef CAPSIM_UTIL_STATS_H
#define CAPSIM_UTIL_STATS_H

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace cap {

/**
 * Streaming scalar accumulator: count, sum, min, max, mean, and
 * variance via Welford's algorithm (numerically stable for the long
 * streams the interval monitors produce).
 */
class RunningStat
{
  public:
    /** Fold one sample into the accumulator. */
    void add(double x);

    /** Merge another accumulator into this one. */
    void merge(const RunningStat &other);

    /** Discard all samples. */
    void reset();

    uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? mean_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    /** Population variance; zero when fewer than two samples. */
    double variance() const;

    /** Population standard deviation. */
    double stddev() const;

  private:
    uint64_t count_ = 0;
    double sum_ = 0.0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Fixed-bin histogram over [lo, hi) with out-of-range samples clamped
 * into the edge bins.  Used for dependency-distance and reuse-distance
 * characterization in tests and reports.
 */
class Histogram
{
  public:
    /**
     * @param lo Inclusive lower bound of the binned range.
     * @param hi Exclusive upper bound; must exceed @p lo.
     * @param bins Number of equal-width bins; must be positive.
     */
    Histogram(double lo, double hi, size_t bins);

    /** Record one sample. */
    void add(double x);

    uint64_t totalCount() const { return total_; }
    size_t binCount() const { return counts_.size(); }
    uint64_t binValue(size_t bin) const { return counts_.at(bin); }

    /** Center of a bin, for reporting. */
    double binCenter(size_t bin) const;

    /** Fraction of samples at or below @p x (empirical CDF). */
    double cdfAt(double x) const;

  private:
    double lo_;
    double hi_;
    std::vector<uint64_t> counts_;
    uint64_t total_ = 0;
};

/**
 * Time series of per-interval samples (e.g. TPI per 2000-instruction
 * interval).  Supports the snapshot queries Figures 12-13 need.
 */
class IntervalSeries
{
  public:
    void add(double value) { values_.push_back(value); }

    size_t size() const { return values_.size(); }
    bool empty() const { return values_.empty(); }
    double at(size_t i) const { return values_.at(i); }
    const std::vector<double> &values() const { return values_; }

    /** Mean over [first, last) clamped to the series bounds. */
    double meanOver(size_t first, size_t last) const;

    /** Mean over the entire series. */
    double mean() const { return meanOver(0, values_.size()); }

  private:
    std::vector<double> values_;
};

} // namespace cap

#endif // CAPSIM_UTIL_STATS_H
