/**
 * @file
 * CAPsim umbrella header: the public API in one include.
 *
 * Fine-grained headers remain available (and preferable for build
 * times); this header is for quick starts and downstream projects
 * that want everything.
 */

#ifndef CAPSIM_CAPSIM_H
#define CAPSIM_CAPSIM_H

// Substrates.
#include "cache/exclusive_hierarchy.h"  // movable-boundary exclusive cache
#include "cache/tlb.h"                  // fully-associative TLB
#include "ooo/branch_predictor.h"       // bimodal/gshare + branch streams
#include "ooo/core_model.h"             // window-constrained OoO core
#include "ooo/two_level_queue.h"        // on-deck + backup queue
#include "ooo/value_predictor.h"        // on-deck + backup queue
#include "timing/cacti.h"               // cache access-time model
#include "timing/clock_table.h"         // worst-case dynamic clock
#include "timing/issue_logic.h"         // wakeup + select delays
#include "timing/technology.h"          // process generations
#include "timing/wire.h"                // Bakoglu repeated wires
#include "trace/analysis.h"             // stack-distance analysis
#include "trace/file_trace.h"           // din-style trace files
#include "trace/stream.h"               // synthetic traces
#include "trace/workloads.h"            // the 22-application suite

// The complexity-adaptive processor layer.
#include "core/adaptive_bpred.h"
#include "core/adaptive_cache.h"
#include "core/adaptive_iq.h"
#include "core/adaptive_structure.h"
#include "core/adaptive_tlb.h"
#include "core/adaptive_vpred.h"
#include "core/async_cache.h"
#include "core/backup_queue.h"
#include "core/concert.h"
#include "core/config_manager.h"
#include "core/experiment.h"
#include "core/interval_cache.h"
#include "core/interval_controller.h"
#include "core/latency_adaptive.h"
#include "core/machine.h"
#include "core/multiprogram.h"
#include "core/power_model.h"
#include "core/profile_guided.h"
#include "core/structures.h"

#endif // CAPSIM_CAPSIM_H
