#include "power_model.h"

#include "util/status.h"

namespace cap::core {

PowerModel::PowerModel(double leakage_fraction)
    : leakage_fraction_(leakage_fraction)
{
    capAssert(leakage_fraction >= 0.0 && leakage_fraction < 1.0,
              "leakage fraction must be in [0,1)");
}

PowerEstimate
PowerModel::estimate(int enabled_elements, int total_elements,
                     Nanoseconds cycle_ns,
                     Nanoseconds fastest_cycle_ns) const
{
    capAssert(total_elements > 0, "structure has no elements");
    capAssert(enabled_elements >= 0 && enabled_elements <= total_elements,
              "enabled count out of range");
    capAssert(cycle_ns >= fastest_cycle_ns && fastest_cycle_ns > 0.0,
              "active clock cannot beat the fastest configuration");

    double enabled_fraction = static_cast<double>(enabled_elements) /
                              static_cast<double>(total_elements);
    double freq_fraction = fastest_cycle_ns / cycle_ns;

    PowerEstimate power;
    power.dynamic =
        (1.0 - leakage_fraction_) * enabled_fraction * freq_fraction;
    power.leakage = leakage_fraction_ * enabled_fraction;
    return power;
}

double
PowerModel::energyPerInstruction(const PowerEstimate &power,
                                 double tpi_ns) const
{
    capAssert(tpi_ns >= 0.0, "negative TPI");
    return power.total() * tpi_ns;
}

} // namespace cap::core
