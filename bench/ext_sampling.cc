/**
 * @file
 * Extension bench: sampled simulation vs full simulation on the
 * paper's two headline sweeps (Figures 9 and 11).
 *
 * For every application the full-run TPI of each configuration is
 * compared against the phase-sampled estimate (cluster the intervals,
 * simulate representatives, reconstruct; docs/SAMPLING.md).  Reported
 * per app: the mean absolute TPI error over configurations, whether
 * the confidence interval brackets the full-run TPI at the adaptive
 * best configuration, whether the per-app argmin configuration is
 * preserved, and how many times fewer references/instructions the
 * sampled estimate simulated.  This bench generates the validation
 * table checked into docs/SAMPLING.md.
 */

#include <cmath>
#include <iostream>

#include "bench_common.h"
#include "core/experiment.h"
#include "sample/study.h"
#include "trace/workloads.h"

namespace {

using namespace cap;

double
meanAbsError(const std::vector<double> &full,
             const std::vector<double> &sampled)
{
    double sum = 0.0;
    for (size_t i = 0; i < full.size(); ++i)
        sum += std::abs(sampled[i] - full[i]) / full[i];
    return 100.0 * sum / static_cast<double>(full.size());
}

} // namespace

int
main()
{
    using namespace cap;
    using namespace cap::bench;

    banner("Extension: phase-sampled simulation (SimPoint/SMARTS "
           "methodology on the paper's sweeps)",
           "cluster-sampled estimates reproduce full-run TPI within "
           "~2% mean absolute error while simulating >= 5x fewer "
           "references, and preserve the per-app adaptive selection");

    int jobs = benchJobs();

    // --- Cache side (Figure 9) ------------------------------------
    {
        // Sampling pays a fixed per-configuration cost (cold prefix +
        // warmed representatives), so the cache comparison runs at
        // four times the usual figure scale -- the regime the method
        // is for.  Library-default params (interval 5000, k=8, warmup
        // 20000, cold prefix 50000: the hierarchy carries long
        // history, docs/SAMPLING.md).
        core::AdaptiveCacheModel model;
        sample::SampleParams params;
        std::vector<trace::AppProfile> apps = trace::cacheStudyApps();
        uint64_t refs = 4 * cacheRefs();
        std::cout << "cache study: " << refs << " refs/app, interval "
                  << params.interval_len << ", k=" << params.clusters
                  << ", warmup " << params.warmup_len << ", cold prefix "
                  << params.cold_prefix_len << ", jobs=" << jobs
                  << "\n\n";

        core::CacheStudy full =
            core::runCacheStudy(model, apps, refs, 8, jobs);
        sample::SampledCacheStudy sampled = sample::runSampledCacheStudy(
            model, apps, refs, params, 8, jobs);

        TableWriter table("Figure 9 sampled vs full");
        table.setHeader({"app", "mae_%", "ci_brackets", "argmin_kept",
                         "speedup_x"});
        for (size_t a = 0; a < apps.size(); ++a) {
            std::vector<double> full_tpi;
            std::vector<double> est_tpi;
            uint64_t simulated = 0;
            for (size_t c = 0; c < full.perf[a].size(); ++c) {
                full_tpi.push_back(full.perf[a][c].tpi_ns);
                est_tpi.push_back(sampled.perf[a][c].perf.tpi_ns);
                simulated += sampled.perf[a][c].simulated_refs;
            }
            size_t best = full.selection.per_app_best[a];
            const sample::SampledCachePerf &sp = sampled.perf[a][best];
            bool brackets = sp.tpi_lo_ns <= full.perf[a][best].tpi_ns &&
                            full.perf[a][best].tpi_ns <= sp.tpi_hi_ns;
            bool argmin_kept =
                sampled.selection.per_app_best[a] == best;
            double speedup =
                static_cast<double>(refs * full.perf[a].size()) /
                static_cast<double>(simulated);
            table.addRow({Cell(apps[a].name),
                          Cell(meanAbsError(full_tpi, est_tpi), 2),
                          Cell(brackets ? "yes" : "no"),
                          Cell(argmin_kept ? "yes" : "no"),
                          Cell(speedup, 1)});
        }
        emit(table);
    }

    // --- IQ side (Figure 11) --------------------------------------
    {
        // Queue state warms in a few hundred instructions, so the IQ
        // side affords fine intervals and a short warmup.
        core::AdaptiveIqModel model;
        sample::SampleParams params;
        params.interval_len = 2000;
        params.warmup_len = 2000;
        std::vector<trace::AppProfile> apps = trace::iqStudyApps();
        uint64_t instrs = iqInstrs();
        std::cout << "IQ study: " << instrs << " instrs/app, interval "
                  << params.interval_len << ", k=" << params.clusters
                  << ", warmup " << params.warmup_len << ", jobs=" << jobs
                  << "\n\n";

        core::IqStudy full = core::runIqStudy(model, apps, instrs, jobs);
        sample::SampledIqStudy sampled =
            sample::runSampledIqStudy(model, apps, instrs, params, jobs);

        TableWriter table("Figure 11 sampled vs full");
        table.setHeader({"app", "mae_%", "ci_brackets", "argmin_kept",
                         "speedup_x"});
        for (size_t a = 0; a < apps.size(); ++a) {
            std::vector<double> full_tpi;
            std::vector<double> est_tpi;
            uint64_t simulated = 0;
            for (size_t c = 0; c < full.perf[a].size(); ++c) {
                full_tpi.push_back(full.perf[a][c].tpi_ns);
                est_tpi.push_back(sampled.perf[a][c].perf.tpi_ns);
                simulated += sampled.perf[a][c].simulated_instrs;
            }
            size_t best = full.selection.per_app_best[a];
            const sample::SampledIqPerf &sp = sampled.perf[a][best];
            bool brackets = sp.tpi_lo_ns <= full.perf[a][best].tpi_ns &&
                            full.perf[a][best].tpi_ns <= sp.tpi_hi_ns;
            bool argmin_kept =
                sampled.selection.per_app_best[a] == best;
            double speedup =
                static_cast<double>(instrs * full.perf[a].size()) /
                static_cast<double>(simulated);
            table.addRow({Cell(apps[a].name),
                          Cell(meanAbsError(full_tpi, est_tpi), 2),
                          Cell(brackets ? "yes" : "no"),
                          Cell(argmin_kept ? "yes" : "no"),
                          Cell(speedup, 1)});
        }
        emit(table);
    }
    return 0;
}
